(* Tests for twig queries: parsing, semantics, containment, LGG. *)

open Twig

let qcheck = QCheck_alcotest.to_alcotest
let query_testable = Alcotest.testable Query.pp Query.equal
let paths = Alcotest.(list (list int))

let doc =
  Xmltree.Parse.term
    "site(regions(africa(item(name,location,quantity)),asia(item(name))),\
     people(person(name,address(city))))"

(* ------------------------------------------------------------------ *)
(* Parser / printer                                                    *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      let q = Parse.query s in
      Alcotest.(check string) ("roundtrip " ^ s) s (Query.to_string q))
    [
      "/site/regions";
      "//item";
      "/site//item/name";
      "/a/*/b";
      "//person[address/city]/name";
      "/site/regions//item[location][quantity]/name";
      "/a[.//b]/c";
      "//item[@id]/name";
      "/a[b[c][d]/e]/f";
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Parse.query s with
      | exception Parse.Syntax_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ "item"; "/"; "/a["; "/a[]"; "/a]"; ""; "/a/following-sibling::b" ]

let test_parse_classification () =
  Alcotest.(check bool) "twig fragment accepts" true
    (Parse.query_opt "//a[b]/c" <> None);
  Alcotest.(check bool) "xpath beyond fragment rejected" true
    (Parse.query_opt "//a[b or c]" = None)

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let select s = Eval.select (Parse.query s) doc

let test_eval_child_path () =
  Alcotest.check paths "exact path" [ [ 1; 0; 0 ] ] (select "/site/people/person/name")

let test_eval_descendant () =
  Alcotest.check paths "all names"
    [ [ 0; 0; 0; 0 ]; [ 0; 1; 0; 0 ]; [ 1; 0; 0 ] ]
    (select "//name")

let test_eval_root_anchored_vs_descendant () =
  Alcotest.check paths "no site below root" [ [] ] (select "//site");
  Alcotest.check paths "child axis from root" [ [] ] (select "/site");
  Alcotest.check paths "nothing: people is not root" [] (select "/people")

let test_eval_wildcard () =
  Alcotest.check paths "regions children"
    [ [ 0; 0 ]; [ 0; 1 ] ]
    (select "/site/regions/*")

let test_eval_filters () =
  Alcotest.check paths "item with location"
    [ [ 0; 0; 0 ] ]
    (select "//item[location]");
  Alcotest.check paths "filtered then project"
    [ [ 0; 0; 0; 0 ] ]
    (select "//item[location][quantity]/name");
  Alcotest.check paths "filter not satisfied" [] (select "//asia/item[location]")

let test_eval_descendant_filter () =
  Alcotest.check paths "person reachable" [ [ 1; 0 ] ] (select "//person[.//city]");
  Alcotest.check paths "site has deep city" [ [] ] (select "/site[.//city]")

let test_eval_nested_filter () =
  Alcotest.check paths "nested path filter" [ [ 1; 0 ] ]
    (select "//person[address/city]")

let test_eval_mid_descendant () =
  Alcotest.check paths "descendant mid-spine"
    [ [ 0; 0; 0; 0 ]; [ 0; 1; 0; 0 ] ]
    (select "/site/regions//name")

let test_selects_one () =
  let q = Parse.query "//item" in
  Alcotest.(check bool) "selects item" true (Eval.selects q doc [ 0; 0; 0 ]);
  Alcotest.(check bool) "not name" false (Eval.selects q doc [ 0; 0; 0; 0 ])

let test_holds_filter () =
  let f = Query.filter_of_tree (Xmltree.Parse.term "item(name)") in
  Alcotest.(check bool) "embeds" true
    (Eval.holds_filter f (Xmltree.Parse.term "item(name,location)"));
  Alcotest.(check bool) "missing branch" false
    (Eval.holds_filter f (Xmltree.Parse.term "item(location)"))

(* ------------------------------------------------------------------ *)
(* Reference evaluator cross-check                                     *)
(* ------------------------------------------------------------------ *)

(* A direct, obviously-correct (and obviously slow) implementation of twig
   semantics: recursive embedding search with no indexing or memoization.
   The production evaluator must agree with it on random inputs. *)
module Naive = struct
  open Xmltree

  let test_holds test (n : Tree.t) =
    match test with
    | Query.Wildcard -> true
    | Query.Label l -> String.equal l n.label

  let rec descendants (n : Tree.t) =
    List.concat_map (fun c -> c :: descendants c) n.children

  let rec filter_at (f : Query.filter) (n : Tree.t) =
    test_holds f.ftest n
    && List.for_all
         (fun (axis, g) ->
           let pool =
             match axis with
             | Query.Child -> n.children
             | Query.Descendant -> descendants n
           in
           List.exists (filter_at g) pool)
         f.fsubs

  let step_at (s : Query.step) n =
    test_holds s.test n
    && List.for_all
         (fun (axis, f) ->
           let pool =
             match axis with
             | Query.Child -> n.Tree.children
             | Query.Descendant -> descendants n
           in
           List.exists (filter_at f) pool)
         s.filters

  (* Does the spine starting at [steps] embed with its first node mapped to
     the node at [path]?  Work top-down from candidate start nodes. *)
  let select (q : Query.t) doc =
    let all = Tree.all_paths doc in
    let node p = Option.get (Tree.node_at doc p) in
    let rec chain current_path = function
      | [] -> [ current_path ]
      | (s : Query.step) :: rest ->
          let candidates =
            match s.axis with
            | Query.Child ->
                List.filter
                  (fun p -> Tree.parent_path p = Some current_path)
                  all
            | Query.Descendant ->
                List.filter
                  (fun p ->
                    p <> current_path
                    && List.length p > List.length current_path
                    && List.filteri
                         (fun i _ -> i < List.length current_path)
                         p
                       = current_path)
                  all
          in
          List.concat_map
            (fun p -> if step_at s (node p) then chain p rest else [])
            candidates
    in
    (match q with
    | [] -> []
    | (first : Query.step) :: rest ->
        let starts =
          match first.axis with Query.Child -> [ [] ] | Query.Descendant -> all
        in
        List.concat_map
          (fun p -> if step_at first (node p) then chain p rest else [])
          starts)
    |> List.sort_uniq compare
end

(* ------------------------------------------------------------------ *)
(* Characteristic queries and anchoredness                             *)
(* ------------------------------------------------------------------ *)

let test_of_example () =
  let q = Query.of_example doc [ 0; 0; 0; 0 ] in
  (* Spine site/regions/africa/item/name with sibling filters. *)
  Alcotest.(check int) "depth" 5 (Query.depth q);
  Alcotest.(check bool) "selects its node" true
    (Eval.selects q doc [ 0; 0; 0; 0 ]);
  Alcotest.(check bool) "anchored" true (Query.is_anchored q)

let test_of_example_skips_text () =
  let d = Xmltree.Parse.term "a(b(#v),c)" in
  let q = Query.of_example d [ 1 ] in
  Alcotest.(check bool) "no text labels in query" true
    (List.for_all (fun l -> l.[0] <> '#') (Query.labels q))

let test_anchor_drops_bad_wildcards () =
  (* //*/a has a wildcard incident to a descendant edge. *)
  let q = Parse.query "//*/a" in
  Alcotest.(check bool) "not anchored" false (Query.is_anchored q);
  let a = Query.anchor q in
  Alcotest.(check bool) "anchored after repair" true (Query.is_anchored a);
  Alcotest.check query_testable "wildcard fused into //" (Parse.query "//a") a

let test_anchor_keeps_good_wildcards () =
  let q = Parse.query "/a/*/b" in
  Alcotest.(check bool) "already anchored" true (Query.is_anchored q);
  Alcotest.check query_testable "unchanged" q (Query.anchor q)

let test_anchored_output_wildcard () =
  Alcotest.(check bool) "wildcard output not anchored" false
    (Query.is_anchored (Parse.query "/a/*"))

let test_size_and_strip () =
  let q = Parse.query "/a[b/c][d]/e" in
  Alcotest.(check int) "size counts filters" 5 (Query.size q);
  Alcotest.(check int) "stripped size" 2 (Query.size (Query.strip_filters q));
  Alcotest.(check bool) "stripped is path" true
    (Query.is_path (Query.strip_filters q))

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let sub s1 s2 = Contain.subsumed (Parse.query s1) (Parse.query s2)

let test_containment_cases () =
  Alcotest.(check bool) "/a/b ⊆ //b" true (sub "/a/b" "//b");
  Alcotest.(check bool) "//b ⊄ /a/b" false (sub "//b" "/a/b");
  Alcotest.(check bool) "/a/b ⊆ /a/*" true (sub "/a/b" "/a/*");
  Alcotest.(check bool) "/a/* ⊄ /a/b" false (sub "/a/*" "/a/b");
  Alcotest.(check bool) "filters weaken" true (sub "//a[b][c]/d" "//a[b]/d");
  Alcotest.(check bool) "filters are conditions" false (sub "//a[b]/d" "//a[b][c]/d");
  Alcotest.(check bool) "child filter implies descendant filter" true
    (sub "//a[b]" "//a[.//b]");
  Alcotest.(check bool) "descendant filter weaker" false
    (sub "//a[.//b]" "//a[b]");
  Alcotest.(check bool) "deep filter implies shallow" true
    (sub "//a[b/c]" "//a[b]");
  Alcotest.(check bool) "reflexive" true (sub "//a[b/c]/d" "//a[b/c]/d");
  Alcotest.(check bool) "long path in //" true (sub "/a/b/c" "//c");
  Alcotest.(check bool) "spine vs filter" true (sub "/a/b[c]" "//b[c]")

let test_equiv () =
  Alcotest.(check bool) "syntactic variants" true
    (Contain.equiv (Parse.query "//a[b][c]") (Parse.query "//a[c][b]"));
  Alcotest.(check bool) "inequivalent" false
    (Contain.equiv (Parse.query "//a[b]") (Parse.query "//a"))

let test_filter_subsumed () =
  let fe s =
    match (Parse.query ("//x[" ^ s ^ "]") : Query.t) with
    | [ { filters = [ e ]; _ } ] -> e
    | _ -> Alcotest.fail "unexpected filter parse"
  in
  Alcotest.(check bool) "b/c implies b" true
    (Contain.filter_subsumed (fe "b/c") (fe "b"));
  Alcotest.(check bool) "b does not imply b/c" false
    (Contain.filter_subsumed (fe "b") (fe "b/c"));
  Alcotest.(check bool) "child implies descendant" true
    (Contain.filter_subsumed (fe "b") (fe ".//b"));
  Alcotest.(check bool) "deep child implies descendant of sub" true
    (Contain.filter_subsumed (fe "b/c") (fe ".//c"))

let test_canonical_instances () =
  let q = Parse.query "//a[.//b]/c" in
  let instances = Contain.canonical_instances q in
  Alcotest.(check bool) "several variants" true (List.length instances >= 2);
  List.iter
    (fun (t, out) ->
      Alcotest.(check bool) "query selects its canonical output" true
        (Eval.selects q t out))
    instances

(* Random queries: spines of 1-4 steps over {a,b,c} with simple filters. *)
let gen_query =
  let open QCheck.Gen in
  let axis = oneofl [ Query.Child; Query.Descendant ] in
  let test = frequency [ (4, map (fun l -> Query.Label l) (oneofl [ "a"; "b"; "c" ])); (1, return Query.Wildcard) ] in
  let filter =
    map2
      (fun t sub ->
        { Query.ftest = t; fsubs = (match sub with None -> [] | Some (a, t') -> [ (a, { Query.ftest = t'; fsubs = [] }) ]) })
      test
      (opt (pair axis test))
  in
  let step =
    map3
      (fun axis test fs -> { Query.axis; test; filters = fs })
      axis test
      (list_size (0 -- 2) (pair axis filter))
  in
  list_size (1 -- 4) step

let arbitrary_query =
  QCheck.make ~print:Query.to_string gen_query

let gen_doc_for_eval =
  let open QCheck.Gen in
  let label = oneofl [ "a"; "b"; "c" ] in
  sized_size (1 -- 20)
  @@ fix (fun self n ->
         if n <= 1 then map Xmltree.Tree.leaf label
         else map2 Xmltree.Tree.node label (list_size (0 -- 3) (self (n / 3))))

let prop_eval_matches_naive =
  QCheck.Test.make ~name:"indexed evaluator agrees with the naive one"
    ~count:500
    (QCheck.pair
       (QCheck.make ~print:Xmltree.Tree.to_string gen_doc_for_eval)
       arbitrary_query)
    (fun (doc, q) -> Eval.select q doc = Naive.select q doc)

let prop_hom_sound =
  (* Homomorphism containment is sound w.r.t. canonical-model semantics. *)
  QCheck.Test.make ~name:"hom containment sound on canonical models" ~count:300
    (QCheck.pair arbitrary_query arbitrary_query)
    (fun (q1, q2) ->
      QCheck.assume (Contain.subsumed q1 q2);
      Contain.subsumed_semantic q1 q2)

let rec filter_label_only (f : Query.filter) =
  f.ftest <> Query.Wildcard
  && List.for_all (fun (_, g) -> filter_label_only g) f.fsubs

let label_only_filters (q : Query.t) =
  List.for_all
    (fun (s : Query.step) ->
      List.for_all (fun (_, f) -> filter_label_only f) s.filters)
    q

let prop_hom_complete_anchored =
  (* On the learner's output shape — anchored queries whose filters test
     labels only — semantic containment implies homomorphism on every
     instance generated here.  (With wildcard filters the implication is
     false: general twig containment is coNP-hard.) *)
  QCheck.Test.make ~name:"hom containment complete on anchored label-filter queries"
    ~count:300
    (QCheck.pair arbitrary_query arbitrary_query)
    (fun (q1, q2) ->
      let q1 = Query.anchor q1 and q2 = Query.anchor q2 in
      QCheck.assume (Query.is_anchored q1 && Query.is_anchored q2);
      QCheck.assume (label_only_filters q1 && label_only_filters q2);
      (* A high variant cap keeps the canonical-model check exact on these
         small random queries. *)
      QCheck.assume (Contain.subsumed_semantic ~max_variants:65536 q1 q2);
      Contain.subsumed q1 q2)

let prop_canonical_selected =
  QCheck.Test.make ~name:"canonical instances are selected" ~count:200
    arbitrary_query (fun q ->
      List.for_all
        (fun (t, out) -> Eval.selects q t out)
        (Contain.canonical_instances q))

(* Every (axis, filter) pair appearing in a query, including nested ones. *)
let rec filters_of_filter ((a, f) : Query.axis * Query.filter) =
  (a, f) :: List.concat_map filters_of_filter f.Query.fsubs

let filters_of_query (q : Query.t) =
  List.concat_map
    (fun (s : Query.step) -> List.concat_map filters_of_filter s.filters)
    q

(* The hash-consed memo in front of [filter_subsumed] must be semantically
   invisible: same verdicts as the uncached recursion, in both argument
   orders (the cache key is ordered), with the cache warm from earlier
   iterations of this very property. *)
let prop_filter_cache_transparent =
  QCheck.Test.make ~name:"cached ≡ uncached filter_subsumed" ~count:300
    (QCheck.pair arbitrary_query arbitrary_query)
    (fun (q1, q2) ->
      let fs1 = filters_of_query q1 and fs2 = filters_of_query q2 in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Contain.filter_subsumed a b
              = Contain.filter_subsumed_uncached a b
              && Contain.filter_subsumed b a
                 = Contain.filter_subsumed_uncached b a)
            fs2)
        fs1)

(* ------------------------------------------------------------------ *)
(* LGG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lgg_idempotent_semantics () =
  let q = Parse.query "/site/regions//item[location]/name" in
  let g = Lgg.lgg q q in
  Alcotest.(check bool) "lgg(q,q) ⊇ q" true (Contain.subsumed q g)

let test_lgg_generalizes_both () =
  let q1 = Query.of_example doc [ 0; 0; 0; 0 ] in
  let q2 = Query.of_example doc [ 0; 1; 0; 0 ] in
  let g = Lgg.lgg q1 q2 in
  Alcotest.(check bool) "contains q1" true (Contain.subsumed q1 g);
  Alcotest.(check bool) "contains q2" true (Contain.subsumed q2 g);
  Alcotest.(check bool) "selects ex1" true (Eval.selects g doc [ 0; 0; 0; 0 ]);
  Alcotest.(check bool) "selects ex2" true (Eval.selects g doc [ 0; 1; 0; 0 ])

let test_lgg_label_generalization () =
  let d1 = Xmltree.Parse.term "r(a(x))" and d2 = Xmltree.Parse.term "r(b(x))" in
  let g = Lgg.lgg (Query.of_example d1 [ 0; 0 ]) (Query.of_example d2 [ 0; 0 ]) in
  Alcotest.check query_testable "wildcard mid-spine" (Parse.query "/r/*/x") g

let test_lgg_depth_generalization () =
  let d1 = Xmltree.Parse.term "r(x)" and d2 = Xmltree.Parse.term "r(m(x))" in
  let g = Lgg.lgg (Query.of_example d1 [ 0 ]) (Query.of_example d2 [ 0; 0 ]) in
  Alcotest.check query_testable "descendant edge" (Parse.query "/r//x") g

let test_lgg_filter_intersection () =
  let d1 = Xmltree.Parse.term "r(i(a,b),i2)" and d2 = Xmltree.Parse.term "r(i(a,c))" in
  let g = Lgg.lgg (Query.of_example d1 [ 0 ]) (Query.of_example d2 [ 0 ]) in
  Alcotest.check query_testable "only the common filter survives"
    (Parse.query "/r/i[a]") g

let test_lgg_descendant_rescue () =
  (* The same label at different depths survives behind a descendant edge. *)
  let d1 = Xmltree.Parse.term "r(i(t(k)))" and d2 = Xmltree.Parse.term "r(i(p(l(t(k)))))" in
  let g = Lgg.lgg (Query.of_example d1 [ 0 ]) (Query.of_example d2 [ 0 ]) in
  Alcotest.(check bool) "rescued deep common structure" true
    (Contain.subsumed g (Parse.query "//i[.//t/k]")
    || Contain.subsumed g (Parse.query "//i[.//k]"));
  Alcotest.(check bool) "still selects both" true
    (Eval.selects g d1 [ 0 ] && Eval.selects g d2 [ 0 ])

let test_lgg_all () =
  Alcotest.(check bool) "empty list" true (Lgg.lgg_all [] = None);
  let q = Parse.query "/a/b" in
  match Lgg.lgg_all [ q ] with
  | Some g -> Alcotest.check query_testable "singleton is itself" q g
  | None -> Alcotest.fail "singleton must succeed"

let test_minimize_removes_redundancy () =
  let q = Parse.query "//a[b][b]/c" in
  let m = Lgg.minimize q in
  Alcotest.(check bool) "equivalent" true (Contain.equiv q m);
  Alcotest.(check bool) "smaller or equal" true (Query.size m <= Query.size q);
  (* [b] duplicated must collapse *)
  Alcotest.check query_testable "dedup" (Parse.query "//a[b]/c") m

let test_minimize_spine_implied_filter () =
  (* [b/c] is implied by the spine /a/b/c below it. *)
  let q = Parse.query "/a[b/c]/b/c" in
  let m = Lgg.minimize q in
  Alcotest.check query_testable "spine-implied filter dropped"
    (Parse.query "/a/b/c") m;
  Alcotest.(check bool) "equivalent" true (Contain.equiv q m)

let prop_minimize_preserves_equivalence =
  QCheck.Test.make ~name:"minimize preserves equivalence" ~count:300
    arbitrary_query (fun q -> Contain.equiv q (Lgg.minimize q))

let prop_lgg_upper_bound =
  QCheck.Test.make ~name:"lgg is an upper bound" ~count:200
    (QCheck.pair arbitrary_query arbitrary_query)
    (fun (q1, q2) ->
      let g = Lgg.lgg q1 q2 in
      Contain.subsumed q1 g && Contain.subsumed q2 g)

let () =
  Alcotest.run "twig"
    [
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "classification" `Quick test_parse_classification;
        ] );
      ( "eval",
        [
          Alcotest.test_case "child path" `Quick test_eval_child_path;
          Alcotest.test_case "descendant" `Quick test_eval_descendant;
          Alcotest.test_case "root anchoring" `Quick test_eval_root_anchored_vs_descendant;
          Alcotest.test_case "wildcard" `Quick test_eval_wildcard;
          Alcotest.test_case "filters" `Quick test_eval_filters;
          Alcotest.test_case "descendant filter" `Quick test_eval_descendant_filter;
          Alcotest.test_case "nested filter" `Quick test_eval_nested_filter;
          Alcotest.test_case "mid descendant" `Quick test_eval_mid_descendant;
          Alcotest.test_case "selects one node" `Quick test_selects_one;
          Alcotest.test_case "holds_filter" `Quick test_holds_filter;
          qcheck prop_eval_matches_naive;
        ] );
      ( "characteristic",
        [
          Alcotest.test_case "of_example" `Quick test_of_example;
          Alcotest.test_case "skips text" `Quick test_of_example_skips_text;
          Alcotest.test_case "anchor repairs" `Quick test_anchor_drops_bad_wildcards;
          Alcotest.test_case "anchor keeps good" `Quick test_anchor_keeps_good_wildcards;
          Alcotest.test_case "output wildcard" `Quick test_anchored_output_wildcard;
          Alcotest.test_case "size and strip" `Quick test_size_and_strip;
        ] );
      ( "containment",
        [
          Alcotest.test_case "cases" `Quick test_containment_cases;
          Alcotest.test_case "equiv" `Quick test_equiv;
          Alcotest.test_case "filter subsumption" `Quick test_filter_subsumed;
          Alcotest.test_case "canonical instances" `Quick test_canonical_instances;
          qcheck prop_hom_sound;
          qcheck prop_hom_complete_anchored;
          qcheck prop_canonical_selected;
          qcheck prop_filter_cache_transparent;
        ] );
      ( "lgg",
        [
          Alcotest.test_case "idempotent" `Quick test_lgg_idempotent_semantics;
          Alcotest.test_case "generalizes both" `Quick test_lgg_generalizes_both;
          Alcotest.test_case "label generalization" `Quick test_lgg_label_generalization;
          Alcotest.test_case "depth generalization" `Quick test_lgg_depth_generalization;
          Alcotest.test_case "filter intersection" `Quick test_lgg_filter_intersection;
          Alcotest.test_case "descendant rescue" `Quick test_lgg_descendant_rescue;
          Alcotest.test_case "lgg_all" `Quick test_lgg_all;
          Alcotest.test_case "minimize dedup" `Quick test_minimize_removes_redundancy;
          Alcotest.test_case "minimize spine-implied" `Quick test_minimize_spine_implied_filter;
          qcheck prop_minimize_preserves_equivalence;
          qcheck prop_lgg_upper_bound;
        ] );
    ]
