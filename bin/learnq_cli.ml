(* learnq — command-line front end to the query-learning library.

   Subcommands:
     xmark           generate an XMark-style document
     validate        validate documents against a DMS (default: XMark)
     schema-contain  decide containment between two DMS files
     gen-doc         generate a random document valid for a DMS
     infer-schema    infer a disjunctive multiplicity schema from documents
     learn-twig      learn a twig query from annotated nodes (or from a goal)
     learn-join      interactive join inference (CSV files or generated data)
     learn-path      learn a path query on a generated road network
     exchange        run a Figure-1 data-exchange scenario
     fuzz            differential fuzzing of the engines against oracles *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Structured failure: print the error, exit with its conventional code
   (64 bad input, 3 budget exhausted) — never a backtrace. *)
let or_die = function
  | Ok v -> v
  | Error err ->
      Printf.eprintf "learnq: %s\n" (Core.Error.to_string err);
      exit (Core.Error.exit_code err)

let load_doc path = or_die (Xmltree.Parse.xml_result ~source:path (read_file path))

(* ------------------------------------------------------------------ *)
(* Shared resource-budget flags                                        *)
(* ------------------------------------------------------------------ *)

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds.  When it runs out the learner \
           degrades to a polynomial approximation (exit code 2) or, with \
           nothing to show, exits 3.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Step budget: the number of candidate/configuration expansions the \
           engines may spend before degrading.")

let budget_term =
  let make timeout fuel =
    (* Budget settings go into every telemetry export header (satellite of
       reproducibility: a trace file alone should identify the run). *)
    let ctx =
      (match fuel with Some f -> [ ("fuel", string_of_int f) ] | None -> [])
      @
      match timeout with
      | Some t -> [ ("timeout_s", Printf.sprintf "%g" t) ]
      | None -> []
    in
    if ctx <> [] then Core.Telemetry.set_context ctx;
    Core.Budget.create ?fuel ?timeout ()
  in
  Term.(const make $ timeout_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* Shared parallelism flag                                             *)
(* ------------------------------------------------------------------ *)

let pool_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pool" ] ~docv:"N"
        ~doc:
          "Domains for the determined-scan between questions: $(docv) lanes \
           (1 = sequential, the default), 0 = the machine's recommended \
           domain count.  The question sequence and journal bytes are \
           identical at every size; only wall-clock changes.")

let pool_term =
  let setup = function
    | None -> ()
    | Some 0 -> Core.Pool.set_default_size (Core.Pool.recommended_size ())
    | Some n -> Core.Pool.set_default_size n
  in
  Term.(const setup $ pool_arg)

(* ------------------------------------------------------------------ *)
(* Shared observability flags                                          *)
(* ------------------------------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the run's nested spans to \
           $(docv); load it in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics (counters, gauges, latency histograms, \
           span rollup) as JSON to $(docv), plus Prometheus text exposition \
           to $(docv).prom.")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LVL"
        ~doc:
          "Structured-log threshold: debug, info, warn (default), error, or \
           quiet.")

let summary_arg =
  Arg.(
    value & flag
    & info [ "summary" ]
        ~doc:
          "Print an end-of-run telemetry summary (question counts, span time \
           rollup, histogram quantiles) to stderr.")

let telemetry_term =
  let setup trace metrics log_level summary =
    let log_level =
      match log_level with
      | None -> None
      | Some s -> (
          match Core.Telemetry.level_of_string s with
          | Some lvl -> Some (Some lvl)
          | None ->
              if List.mem s [ "quiet"; "none"; "off" ] then Some None
              else
                or_die
                  (Error
                     (Core.Error.invalid_input ~what:"--log-level"
                        (s
                       ^ " is not a level (debug|info|warn|error|quiet)"))))
    in
    Core.Telemetry.configure ?trace ?metrics ?log_level ~summary ()
  in
  Term.(const setup $ trace_arg $ metrics_arg $ log_level_arg $ summary_arg)

(* ------------------------------------------------------------------ *)
(* Shared durability and supervision flags                             *)
(* ------------------------------------------------------------------ *)

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead session journal: every question and answer is \
           appended (fsync'd) to $(docv), so a crashed session can be \
           continued with $(b,--resume) without re-asking anything already \
           answered.")

let journal_sync_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [
                ("always", Core.Journal.Always);
                ("batch", Core.Journal.Batch);
                ("off", Core.Journal.Off);
              ]))
        None
    & info [ "journal-sync" ] ~docv:"always|batch|off"
        ~doc:
          "Journal fsync policy: $(b,always) fsyncs every record (the \
           default — lose at most the in-flight answer), $(b,batch) \
           group-commits 8 records per fsync (one crash loses at most the \
           open group; ~8x less fsync overhead), $(b,off) never fsyncs.  On \
           $(b,--resume) the journal's recorded policy is kept unless this \
           flag overrides it.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume the session recorded in $(b,--journal): replay the \
           surviving answers (a torn tail from a crash is dropped), rebuild \
           the learner state, and continue asking.  The seed is taken from \
           the journal header; the other parameters must match the recording \
           run.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "With $(b,--journal), snapshot the learner state and atomically \
           compact the journal down to header + checkpoint every $(docv) \
           labeled answers, so $(b,--resume) restores the snapshot instead \
           of replaying from record zero and the journal stays small over \
           arbitrarily long sessions.  0 (the default) never compacts.")

let crash_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-after" ] ~docv:"K"
        ~doc:
          "Fault injection for testing crash recovery: exit abruptly (code \
           137, as if killed) once the oracle has replied $(docv) times.")

let retries_arg =
  Arg.(
    value & opt int 3
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Ask an unanswered (refused or timed-out) question up to $(docv) \
           times in total, with exponential backoff, before giving up on it.")

let breaker_arg =
  Arg.(
    value & opt int 5
    & info [ "breaker" ] ~docv:"N"
        ~doc:
          "Circuit breaker: after $(docv) consecutive given-up questions the \
           session stops asking and returns the current candidate (exit \
           code 2) instead of hammering a dead oracle.")

let noise_arg =
  Arg.(
    value & opt float 0.0
    & info [ "noise" ] ~docv:"P"
        ~doc:"Probability the simulated user answers wrong.")

let refusal_arg =
  Arg.(
    value & opt float 0.0
    & info [ "refusal" ] ~docv:"P"
        ~doc:"Probability the simulated user refuses a question.")

let timeout_rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "timeout-rate" ] ~docv:"P"
        ~doc:
          "Probability the simulated user's answer never arrives (distinct \
           from $(b,--timeout), the wall-clock budget).")

(* The exit code of an injected crash: 128 + SIGKILL, what a real kill -9
   would produce. *)
let exit_crashed = 137

let crash_wrap k oracle =
  match k with
  | None -> oracle
  | Some k ->
      let n = ref 0 in
      fun it ->
        if !n >= k then begin
          Core.Telemetry.Log.warn
            ~kv:[ ("answers", string_of_int k) ]
            "injected crash (--crash-after)";
          exit exit_crashed
        end;
        incr n;
        oracle it

let flaky_profile ~noise ~refusal ~timeout_rate =
  if noise = 0.0 && refusal = 0.0 && timeout_rate = 0.0 then None
  else Some (Core.Flaky.profile ~noise ~refusal ~timeout:timeout_rate ())

(* Simulated oracles answer in microseconds; keep the backoff short so a
   flaky run doesn't spend its wall-clock sleeping. *)
let retry_policy ~retries ~breaker =
  Core.Retry.policy ~max_attempts:retries ~base_delay:0.01 ~max_delay:0.25
    ~breaker_threshold:breaker ()

(* A started (or resumed) journal session: [seed] is the effective seed —
   the journal header's on resume, the --seed flag's otherwise. *)
type journal_session = {
  log : Core.Journal.t option;
  seed : int;
  raw_events : Core.Journal.event list;
}

let start_journal ~path ~resuming ~engine ~config ~seed ~sync =
  Core.Telemetry.set_context
    [ ("engine", engine); ("seed", string_of_int seed) ];
  match path with
  | None ->
      if resuming then
        or_die
          (Error
             (Core.Error.invalid_input ~what:"--resume"
                "requires --journal FILE"));
      { log = None; seed; raw_events = [] }
  | Some path when resuming ->
      let log, (r : Core.Journal.recovered) =
        or_die (Core.Journal.resume ?sync ~path ())
      in
      let h = Option.get r.header in
      if h.engine <> engine then
        or_die
          (Error
             (Core.Error.invalid_input ~what:"--resume"
                (Printf.sprintf "%s records a %s session, not %s" path
                   h.engine engine)));
      if h.config <> config then
        or_die
          (Error
             (Core.Error.invalid_input ~what:"--resume"
                (Printf.sprintf
                   "%s was recorded with different parameters: %s" path
                   h.config)));
      if r.dropped_bytes > 0 then
        Core.Telemetry.Log.warn
          ~kv:[ ("bytes", string_of_int r.dropped_bytes) ]
          "dropped a torn record from the journal tail";
      (* The journal header's seed wins on resume; re-stamp it. *)
      Core.Telemetry.set_context [ ("seed", string_of_int h.seed) ];
      { log = Some log; seed = h.seed; raw_events = r.events }
  | Some path ->
      {
        log =
          Some
            (or_die
               (Core.Journal.create_result ?sync ~path { seed; engine; config }));
        seed;
        raw_events = [];
      }

(* Decode the Answered prefix of a recovered journal with an engine codec;
   an undecodable item means the journal belongs to other data. *)
let decode_replies decode events =
  List.filter_map
    (function
      | Core.Journal.Answered (s, reply) -> (
          match decode s with
          | Some it -> Some (it, reply)
          | None ->
              or_die
                (Error
                   (Core.Error.invalid_input ~what:"--resume"
                      (Printf.sprintf
                         "journal item %S does not decode; the journal was \
                          recorded over different data"
                         s))))
      | _ -> None)
    events

(* Split the recovered events at the last checkpoint (written under
   --checkpoint-every) and decode its state snapshot with the engine codec:
   resume restores the snapshot and replays only the tail. *)
let split_restore decode_state events =
  let rec split ck tail = function
    | [] -> (ck, List.rev tail)
    | Core.Journal.Checkpoint c :: rest -> split (Some c) [] rest
    | ev :: rest -> split ck (ev :: tail) rest
  in
  let ck, tail = split None [] events in
  match ck with
  | None -> (None, tail)
  | Some c -> (
      match decode_state c.Core.Journal.ck_state with
      | Ok st ->
          ( Some (st, c.Core.Journal.ck_answered, c.Core.Journal.ck_questions),
            tail )
      | Error msg ->
          or_die
            (Error
               (Core.Error.invalid_input ~what:"--resume"
                  ("undecodable journal checkpoint: " ^ msg))))

(* Checkpoint compaction (and journal close) can hit the disk mid-session;
   the typed storage error exits with EX_IOERR, leaving the journal intact
   and resumable. *)
let run_journaled f =
  try f ()
  with Core.Journal.Io err ->
    Printf.eprintf "learnq: %s\n" (Core.Error.to_string err);
    exit Core.Error.exit_io

let report_session ?note ~questions ~replayed ~pruned ~refused ~retried () =
  Printf.printf "questions: %d, replayed: %d, pruned: %d, refused: %d%s\n"
    questions replayed pruned refused
    (if retried > 0 then Printf.sprintf ", retried: %d" retried else "");
  Option.iter print_endline note

(* Shared post-session policy: an open breaker or an exhausted budget both
   yield a usable-but-degraded candidate and exit code 2. *)
let exit_degraded_if ~breaker_open ~degraded what =
  if breaker_open then begin
    Core.Telemetry.Log.error
      (Printf.sprintf
         "the oracle circuit breaker opened (too many consecutive unanswered \
          questions); %s is the current candidate"
         what);
    exit Core.Error.exit_degraded
  end;
  if degraded then begin
    Core.Telemetry.Log.warn
      (Printf.sprintf
         "the budget ran out; %s is the current candidate, not necessarily \
          the goal"
         what);
    exit Core.Error.exit_degraded
  end

(* ------------------------------------------------------------------ *)
(* xmark                                                               *)
(* ------------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Document scale factor.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Deterministic seed.")

(* Every command that takes a seed stamps it into the telemetry context, so
   trace and metrics exports identify the run they came from. *)
let seed_term =
  let stamp seed =
    Core.Telemetry.set_context [ ("seed", string_of_int seed) ];
    seed
  in
  Term.(const stamp $ seed_arg)

let xmark_cmd =
  let run () scale seed =
    print_string (Xmltree.Print.to_xml (Benchkit.Xmark.generate ~scale ~seed ()))
  in
  Cmd.v
    (Cmd.info "xmark" ~doc:"Generate an XMark-style auction document.")
    Term.(const run $ telemetry_term $ scale_arg $ seed_term)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"XML documents.")

let schema_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "schema" ] ~docv:"FILE"
        ~doc:
          "Schema file in the textual DMS format (root: line + one \
           'label -> DME' rule per line); defaults to the built-in XMark \
           schema.")

let load_schema = function
  | None -> Benchkit.Xmark.schema
  | Some path -> or_die (Uschema.Schema.parse_result ~source:path (read_file path))

let validate_cmd =
  let run () schema_file files =
    let schema = load_schema schema_file in
    let failures = ref 0 in
    List.iter
      (fun path ->
        match Uschema.Schema.validate schema (load_doc path) with
        | Ok () -> Printf.printf "%s: valid\n" path
        | Error vs ->
            incr failures;
            Printf.printf "%s: INVALID (%d violations)\n" path (List.length vs);
            List.iteri
              (fun i v ->
                if i < 5 then
                  Format.printf "  %a@." Uschema.Schema.pp_violation v)
              vs)
      files;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate documents against a DMS (default: XMark).")
    Term.(const run $ telemetry_term $ schema_arg $ files_arg)

let schema_contain_cmd =
  let s1_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA1")
  in
  let s2_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SCHEMA2")
  in
  let run () p1 p2 =
    let s1 = or_die (Uschema.Schema.parse_result ~source:p1 (read_file p1)) in
    let s2 = or_die (Uschema.Schema.parse_result ~source:p2 (read_file p2)) in
    let leq12 = Uschema.Containment.schema_leq s1 s2 in
    let leq21 = Uschema.Containment.schema_leq s2 s1 in
    Printf.printf "%s <= %s: %b\n%s <= %s: %b\n" p1 p2 leq12 p2 p1 leq21;
    if leq12 && leq21 then print_endline "the schemas are equivalent"
  in
  Cmd.v
    (Cmd.info "schema-contain"
       ~doc:"Decide containment between two DMS files, both directions.")
    Term.(const run $ telemetry_term $ s1_arg $ s2_arg)

let gen_doc_cmd =
  let run () schema_file seed =
    let schema = load_schema schema_file in
    let rng = Core.Prng.create seed in
    match Uschema.Docgen.generate ~rng schema with
    | Some doc -> print_string (Xmltree.Print.to_xml doc)
    | None ->
        prerr_endline "the schema admits no finite document";
        exit 1
  in
  Cmd.v
    (Cmd.info "gen-doc"
       ~doc:"Generate a random document valid for a DMS (default: XMark).")
    Term.(const run $ telemetry_term $ schema_arg $ seed_term)

(* ------------------------------------------------------------------ *)
(* infer-schema                                                        *)
(* ------------------------------------------------------------------ *)

let infer_schema_cmd =
  let run () files =
    match Uschema.Infer.infer (List.map load_doc files) with
    | Some schema -> Format.printf "%a@." Uschema.Schema.pp schema
    | None ->
        prerr_endline "documents disagree on the root label";
        exit 1
  in
  Cmd.v
    (Cmd.info "infer-schema"
       ~doc:"Infer a disjunctive multiplicity schema from documents.")
    Term.(const run $ telemetry_term $ files_arg)

(* ------------------------------------------------------------------ *)
(* learn-twig                                                          *)
(* ------------------------------------------------------------------ *)

let parse_path s =
  (* "/0/2/1" or "0/2/1" *)
  String.split_on_char '/' s
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some i -> i
         | None -> failwith ("bad node path: " ^ s))

let learn_twig_cmd =
  let doc_files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"XML documents.")
  in
  let selects =
    Arg.(
      value
      & opt_all string []
      & info [ "select" ] ~docv:"PATH"
          ~doc:
            "Annotated node as child-index path (e.g. /3/0/1), one per \
             --select, matched positionally with FILEs (repeat a file to \
             annotate several nodes).")
  in
  let goal =
    Arg.(
      value
      & opt (some string) None
      & info [ "goal" ] ~docv:"XPATH"
          ~doc:
            "Instead of --select, draw one example per document from this \
             goal query (simulated annotator).")
  in
  let with_schema =
    Arg.(
      value & flag
      & info [ "xmark-schema" ]
          ~doc:"Prune filters implied by the XMark schema from the result.")
  in
  let exact =
    Arg.(
      value
      & opt (some int) None
      & info [ "exact" ] ~docv:"SIZE"
          ~doc:
            "Run the exact bounded consistency search over twigs of at most \
             $(docv) pattern nodes (NP-complete; requires --goal, which also \
             provides negative examples).  Under --timeout/--fuel the search \
             degrades to the anchored, then the approximate learner.")
  in
  (* Positive and negative annotations drawn from the goal: selected nodes,
     and as negatives the hard look-alikes — nodes carrying the same label as
     a selected node without being selected (the sample an annotator marking
     near-misses would produce). *)
  let goal_examples ~per_doc q docs =
    List.concat_map
      (fun d ->
        let selected = Twig.Eval.select q d in
        let target_labels =
          List.filter_map
            (fun p ->
              Option.map
                (fun (n : Xmltree.Tree.t) -> n.label)
                (Xmltree.Tree.node_at d p))
            selected
          |> List.sort_uniq compare
        in
        let pos =
          List.filteri (fun i _ -> i < per_doc) selected
          |> List.map (fun p ->
                 Core.Example.positive (Xmltree.Annotated.make d p))
        in
        let pos_depths = List.map List.length selected in
        let neg =
          List.concat_map (Xmltree.Tree.paths_with_label d) target_labels
          |> List.filter (fun p -> not (List.mem p selected))
          (* Same-depth look-alikes first: they are the negatives a trivial
             depth-k query cannot shake off. *)
          |> List.stable_sort (fun a b ->
                 let hard p = List.mem (List.length p) pos_depths in
                 compare (not (hard a)) (not (hard b)))
          |> List.filteri (fun i _ -> i < per_doc)
          |> List.map (fun p ->
                 Core.Example.negative (Xmltree.Annotated.make d p))
        in
        pos @ neg)
      docs
  in
  let run_exact budget max_size goal docs =
    match goal with
    | None ->
        or_die
          (Error (Core.Error.invalid_input ~what:"--exact" "requires --goal"))
    | Some xpath ->
        let q = or_die (Twig.Parse.query_result ~source:"--goal" xpath) in
        let examples = goal_examples ~per_doc:2 q docs in
        if not (List.exists Core.Example.is_positive examples) then
          or_die
            (Error
               (Core.Error.invalid_input ~what:"--goal"
                  "selects no node in the given documents"));
        let outcome = Twiglearn.Fallback.learn ~budget ~max_size examples in
        let level =
          match outcome.level with
          | Twiglearn.Fallback.Exact -> "exact"
          | Anchored -> "anchored"
          | Approximate -> "approximate"
        in
        (match outcome.query with
        | None ->
            Printf.eprintf "learnq: %s\n"
              (Core.Error.to_string
                 (Core.Error.budget_exhausted ~engine:"twig" outcome.spent));
            exit Core.Error.exit_budget
        | Some learned ->
            Format.printf "learned (%s): %a@." level Twig.Query.pp learned;
            if outcome.degraded then begin
              Core.Telemetry.Log.warn
                ~kv:
                  [
                    ("level", level);
                    ("fuel", string_of_int outcome.spent.fuel_spent);
                    ("elapsed_s", Printf.sprintf "%.3f" outcome.spent.elapsed);
                    ("dropped", string_of_int outcome.dropped);
                    ("training_errors", string_of_int outcome.training_errors);
                  ]
                "degraded to a weaker learner";
              exit Core.Error.exit_degraded
            end)
  in
  (* A live journaled session: the user is simulated by the --goal query
     (optionally through a fault injector), questions and answers are
     write-ahead logged, and a crashed run picks up from its journal. *)
  let run_interactive files goal seed journal sync resume checkpoint_every
      crash_after noise refusal timeout_rate retries breaker budget =
    let file = List.hd files in
    let doc = load_doc file in
    let xpath =
      match goal with
      | Some g -> g
      | None ->
          or_die
            (Error
               (Core.Error.invalid_input ~what:"--interactive"
                  "requires --goal (the simulated user)"))
    in
    let goal_q = or_die (Twig.Parse.query_result ~source:"--goal" xpath) in
    let config =
      Printf.sprintf
        "learn-twig file=%s goal=%s noise=%g refusal=%g timeout-rate=%g"
        (Filename.basename file) xpath noise refusal timeout_rate
    in
    let js =
      start_journal ~path:journal ~resuming:resume ~engine:"learn-twig"
        ~config ~seed ~sync
    in
    let rng = Core.Prng.create js.seed in
    let items = Twiglearn.Interactive.items_of_doc doc in
    let base_oracle it = Twig.Eval.selects_example goal_q it in
    let profile = flaky_profile ~noise ~refusal ~timeout_rate in
    let oracle =
      match profile with
      | None -> fun it -> Core.Flaky.Label (base_oracle it)
      | Some profile -> Core.Flaky.wrap ~profile ~rng base_oracle
    in
    let oracle = crash_wrap crash_after oracle in
    let restore, tail =
      split_restore (Twiglearn.Interactive.decode_state ~doc) js.raw_events
    in
    let resume_events =
      decode_replies (Twiglearn.Interactive.decode_item ~doc) tail
    in
    let jpair =
      Option.map (fun log -> (log, Twiglearn.Interactive.encode_item)) js.log
    in
    let outcome =
      run_journaled (fun () ->
          let outcome =
            Twiglearn.Interactive.Loop.run_flaky ~rng ~budget ?journal:jpair
              ~resume:resume_events ?restore ~checkpoint_every
              ~snapshot:Twiglearn.Interactive.encode_state
              ~retry:(retry_policy ~retries ~breaker)
              ~oracle ~items ()
          in
          Option.iter Core.Journal.close js.log;
          outcome)
    in
    report_session ~questions:outcome.questions ~replayed:outcome.replayed
      ~pruned:outcome.pruned ~refused:outcome.refused ~retried:outcome.retried
      ();
    (match outcome.query with
    | Some q -> Format.printf "learned: %a@." Twig.Query.pp q
    | None -> print_endline "no consistent query");
    exit_degraded_if ~breaker_open:outcome.breaker_open
      ~degraded:outcome.degraded "the learned twig"
  in
  let run () () () files selects goal with_schema exact budget interactive seed
      journal sync resume checkpoint_every crash_after noise refusal
      timeout_rate retries breaker =
    if interactive || journal <> None then
      run_interactive files goal seed journal sync resume checkpoint_every
        crash_after noise refusal timeout_rate retries breaker budget
    else
    let docs = List.map load_doc files in
    match exact with
    | Some max_size -> run_exact budget max_size goal docs
    | None -> (
        let examples =
          match goal with
          | Some xpath -> (
              match Twig.Parse.query_opt xpath with
              | None ->
                  prerr_endline ("not a twig query: " ^ xpath);
                  exit Core.Error.exit_bad_input
              | Some q ->
                  List.filter_map
                    (fun d ->
                      match Twig.Eval.select q d with
                      | p :: _ -> Some (Xmltree.Annotated.make d p)
                      | [] -> None)
                    docs)
          | None ->
              if List.length selects <> List.length docs then begin
                prerr_endline "need exactly one --select per FILE (or --goal)";
                exit Core.Error.exit_bad_input
              end;
              List.map2
                (fun d s -> Xmltree.Annotated.make d (parse_path s))
                docs selects
        in
        match Twiglearn.Positive.learn_positive examples with
        | None ->
            prerr_endline "no anchored twig is consistent with the annotations";
            exit 1
        | Some learned ->
            Format.printf "learned: %a@." Twig.Query.pp learned;
            if with_schema then
              Format.printf "pruned:  %a@." Twig.Query.pp
                (Twiglearn.Schema_aware.prune
                   (Uschema.Depgraph.of_schema Benchkit.Xmark.schema)
                   learned))
  in
  let interactive =
    Arg.(
      value & flag
      & info [ "interactive" ]
          ~doc:
            "Run the Section-3 interactive protocol on the first FILE, with \
             --goal as the simulated user; supports --journal/--resume crash \
             recovery and the flaky-oracle flags.")
  in
  (* Ablation switches for the PR 4 hot-path optimizations — they exist so
     [bench pr4]'s baselines can be reproduced from the CLI. *)
  let ablation_term =
    let batch_lgg =
      Arg.(
        value & flag
        & info [ "batch-lgg" ]
            ~doc:
              "Ablation: refold the whole positive set per answer and per \
               probe instead of maintaining the incremental LGG.")
    in
    let no_contain_cache =
      Arg.(
        value & flag
        & info [ "no-contain-cache" ]
            ~doc:
              "Ablation: disable the hash-consed filter-containment cache \
               used by LGG minimization.")
    in
    let no_xmlstore =
      Arg.(
        value & flag
        & info [ "no-xmlstore" ]
            ~doc:
              "Ablation: evaluate twigs with the bottom-up tree walk instead \
               of the index-backed structural joins over the labeled store.  \
               Answers (and therefore question sequences and journals) are \
               identical either way.")
    in
    let setup batch nocache nostore =
      if batch then Twiglearn.Interactive.set_batch_lgg true;
      if nocache then Twig.Contain.set_filter_cache ~enabled:false ();
      if nostore then Twig.Eval.set_xmlstore false
    in
    Term.(const setup $ batch_lgg $ no_contain_cache $ no_xmlstore)
  in
  Cmd.v
    (Cmd.info "learn-twig"
       ~doc:
         "Learn a twig query from annotated nodes; with --exact, run the \
          budgeted exact search with graceful degradation; with \
          --interactive, run a journaled question-answer session.")
    Term.(const run $ telemetry_term $ pool_term $ ablation_term $ doc_files
          $ selects $ goal $ with_schema
          $ exact $ budget_term $ interactive $ seed_term $ journal_arg
          $ journal_sync_arg $ resume_arg $ checkpoint_every_arg
          $ crash_after_arg $ noise_arg
          $ refusal_arg $ timeout_rate_arg $ retries_arg $ breaker_arg)

(* ------------------------------------------------------------------ *)
(* learn-join                                                          *)
(* ------------------------------------------------------------------ *)

let strategy_arg =
  let strategies =
    [ ("first", `First); ("random", `Random); ("lattice", `Lattice); ("split", `Split) ]
  in
  Arg.(
    value
    & opt (enum strategies) `Lattice
    & info [ "strategy" ] ~doc:"Question-selection strategy: $(docv)."
        ~docv:"first|random|lattice|split")

(* Human-in-the-loop labeling: print the tuple pair, read y/n. *)
let ask_human left_rel right_rel (it : Joinlearn.Interactive.item) =
  let render rel t =
    Array.to_list (Relational.Relation.attrs rel)
    |> List.mapi (fun i a ->
           Printf.sprintf "%s=%s" a (Relational.Value.to_string t.(i)))
    |> String.concat ", "
  in
  Printf.printf "Should these rows join?\n  left:  %s\n  right: %s\n"
    (render left_rel it.left) (render right_rel it.right);
  let rec prompt () =
    print_string "  [y/n] > ";
    match input_line stdin with
    | "y" | "Y" | "yes" -> true
    | "n" | "N" | "no" -> false
    | exception End_of_file ->
        prerr_endline "stdin closed; treating as 'no'";
        false
    | _ -> prompt ()
  in
  prompt ()

let print_learned_predicate left_rel right_rel space mask =
  let pairs = Joinlearn.Signature.to_predicate space mask in
  let named =
    List.map
      (fun (i, j) ->
        Printf.sprintf "%s.%s = %s.%s"
          (Relational.Relation.name left_rel)
          (Relational.Relation.attrs left_rel).(i)
          (Relational.Relation.name right_rel)
          (Relational.Relation.attrs right_rel).(j))
      pairs
  in
  Printf.printf "learned predicate: %s\n"
    (if named = [] then "(cartesian product)" else String.concat " AND " named)

let learn_join_csv left_path right_path strategy =
  let load name path =
    or_die (Relational.Csv.parse_result ~source:path ~name (read_file path))
  in
  let left = load "left" left_path and right = load "right" right_path in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity left)
      ~right_arity:(Relational.Relation.arity right)
  in
  let items = Joinlearn.Interactive.items_of space left right in
  Printf.printf
    "%d candidate row pairs; answer the questions (uninformative pairs are \
     skipped automatically).\n\n"
    (List.length items);
  let outcome =
    Joinlearn.Interactive.Loop.run ~strategy ~oracle:(ask_human left right)
      ~items ()
  in
  Printf.printf "\n%d questions asked, %d pairs inferred automatically.\n"
    outcome.questions outcome.pruned;
  match outcome.query with
  | Some mask ->
      print_learned_predicate left right space mask;
      let joined =
        Relational.Algebra.equijoin left right
          (Joinlearn.Signature.to_predicate space mask)
      in
      Printf.printf "join result (%d rows):\n%s"
        (Relational.Relation.cardinal joined)
        (Relational.Csv.to_string joined)
  | None ->
      prerr_endline "the answers are inconsistent with every equi-join"

let learn_join_cmd =
  let rows_arg =
    Arg.(value & opt int 30 & info [ "rows" ] ~doc:"Rows per relation.")
  in
  let left_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "left" ] ~docv:"CSV"
          ~doc:"Left relation as CSV (headers = attributes); with --right, \
                runs a real interactive session on your data.")
  in
  let right_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "right" ] ~docv:"CSV" ~doc:"Right relation as CSV.")
  in
  let run_generated_join seed strategy_name strategy rows budget noise refusal
      timeout_rate journal sync resume checkpoint_every crash_after retries
      breaker =
    let config =
      Printf.sprintf
        "learn-join rows=%d strategy=%s noise=%g refusal=%g timeout-rate=%g"
        rows strategy_name noise refusal timeout_rate
    in
    let js =
      start_journal ~path:journal ~resuming:resume ~engine:"learn-join"
        ~config ~seed ~sync
    in
    let rng = Core.Prng.create js.seed in
    let inst =
      Relational.Generator.pair_instance ~rng ~left_rows:rows ~right_rows:rows ()
    in
    Printf.printf "hidden goal: %s\n"
      (String.concat ", "
         (List.map (fun (i, j) -> Printf.sprintf "a%d=b%d" i j) inst.planted));
    let space =
      Joinlearn.Signature.space
        ~left_arity:(Relational.Relation.arity inst.left)
        ~right_arity:(Relational.Relation.arity inst.right)
    in
    let items = Joinlearn.Interactive.items_of space inst.left inst.right in
    let goal_mask = Joinlearn.Signature.of_predicate space inst.planted in
    let base_oracle (it : Joinlearn.Interactive.item) =
      Joinlearn.Signature.subset goal_mask it.mask
    in
    let profile = flaky_profile ~noise ~refusal ~timeout_rate in
    let oracle =
      match profile with
      | None -> fun it -> Core.Flaky.Label (base_oracle it)
      | Some profile -> Core.Flaky.wrap ~profile ~rng base_oracle
    in
    let oracle = crash_wrap crash_after oracle in
    let restore, tail =
      split_restore
        (Joinlearn.Interactive.decode_state ~left:inst.left ~right:inst.right)
        js.raw_events
    in
    let resume_events =
      decode_replies
        (Joinlearn.Interactive.decode_item ~left:inst.left ~right:inst.right)
        tail
    in
    let jpair =
      Option.map
        (fun log ->
          ( log,
            Joinlearn.Interactive.encode_item ~left:inst.left ~right:inst.right
          ))
        js.log
    in
    let outcome =
      run_journaled (fun () ->
          let outcome =
            Joinlearn.Interactive.Loop.run_flaky ~rng ~strategy ~budget
              ?journal:jpair ~resume:resume_events ?restore ~checkpoint_every
              ~snapshot:Joinlearn.Interactive.encode_state
              ~retry:(retry_policy ~retries ~breaker)
              ~oracle ~items ()
          in
          Option.iter Core.Journal.close js.log;
          outcome)
    in
    (match outcome.query with
    | Some learned ->
        Format.printf "learned:     %a@." (Joinlearn.Signature.pp space) learned
    | None -> print_endline "no consistent predicate");
    report_session
      ~note:
        (Printf.sprintf "pool: %d"
           (outcome.questions + outcome.replayed + outcome.pruned))
      ~questions:outcome.questions ~replayed:outcome.replayed
      ~pruned:outcome.pruned ~refused:outcome.refused ~retried:outcome.retried
      ();
    exit_degraded_if ~breaker_open:outcome.breaker_open
      ~degraded:outcome.degraded "the predicate"
  in
  let run () () seed strategy rows left right budget noise refusal timeout_rate
      journal sync resume checkpoint_every crash_after retries breaker =
    let strategy_name =
      match strategy with
      | `First -> "first"
      | `Random -> "random"
      | `Lattice -> "lattice"
      | `Split -> "split"
    in
    let strategy_fn =
      match strategy with
      | `First -> Core.Interact.first_strategy
      | `Random -> Core.Interact.random_strategy
      | `Lattice -> Joinlearn.Interactive.lattice_strategy
      | `Split -> Joinlearn.Interactive.split_strategy ()
    in
    match (left, right) with
    | Some l, Some r -> learn_join_csv l r strategy_fn
    | Some _, None | None, Some _ ->
        prerr_endline "need both --left and --right";
        exit Core.Error.exit_bad_input
    | None, None ->
        run_generated_join seed strategy_name strategy_fn rows budget noise
          refusal timeout_rate journal sync resume checkpoint_every crash_after
          retries breaker
  in
  Cmd.v
    (Cmd.info "learn-join"
       ~doc:
         "Interactively infer a join predicate — on your CSV data with \
          --left/--right (you answer the questions), or on a generated \
          instance with a simulated (possibly flaky) user, journaled and \
          resumable with --journal/--resume.")
    Term.(const run $ telemetry_term $ pool_term $ seed_term $ strategy_arg
          $ rows_arg $ left_arg $ right_arg $ budget_term $ noise_arg
          $ refusal_arg $ timeout_rate_arg $ journal_arg $ journal_sync_arg
          $ resume_arg $ checkpoint_every_arg $ crash_after_arg $ retries_arg
          $ breaker_arg)

(* ------------------------------------------------------------------ *)
(* learn-path                                                          *)
(* ------------------------------------------------------------------ *)

let learn_path_cmd =
  let cities_arg =
    Arg.(value & opt int 14 & info [ "cities" ] ~doc:"Number of cities.")
  in
  let goal_arg =
    Arg.(
      value
      & opt string "highway highway*"
      & info [ "goal" ] ~docv:"REGEX" ~doc:"Hidden goal path query.")
  in
  let run () () seed cities goal budget journal sync resume checkpoint_every
      crash_after noise refusal timeout_rate retries breaker =
    let config =
      Printf.sprintf
        "learn-path cities=%d goal=%s noise=%g refusal=%g timeout-rate=%g"
        cities goal noise refusal timeout_rate
    in
    let js =
      start_journal ~path:journal ~resuming:resume ~engine:"learn-path"
        ~config ~seed ~sync
    in
    let rng = Core.Prng.create js.seed in
    let graph = Graphdb.Generators.geo ~rng ~cities () in
    let goal_dfa = Automata.Dfa.of_regex (Automata.Regex.parse goal) in
    let items = Pathlearn.Interactive.items_of_graph ~max_len:3 ~rng graph in
    let base_oracle (it : Pathlearn.Interactive.item) =
      Automata.Dfa.accepts goal_dfa it.word
    in
    let profile = flaky_profile ~noise ~refusal ~timeout_rate in
    let oracle =
      match profile with
      | None -> fun it -> Core.Flaky.Label (base_oracle it)
      | Some profile -> Core.Flaky.wrap ~profile ~rng base_oracle
    in
    let oracle = crash_wrap crash_after oracle in
    let restore, tail =
      split_restore Pathlearn.Interactive.decode_state js.raw_events
    in
    let resume_events = decode_replies Pathlearn.Interactive.decode_item tail in
    let jpair =
      Option.map (fun log -> (log, Pathlearn.Interactive.encode_item)) js.log
    in
    let outcome =
      run_journaled (fun () ->
          let outcome =
            Pathlearn.Interactive.Loop.run_flaky ~rng ~budget ?journal:jpair
              ~resume:resume_events ?restore ~checkpoint_every
              ~snapshot:Pathlearn.Interactive.encode_state
              ~retry:(retry_policy ~retries ~breaker)
              ~oracle ~items ()
          in
          Option.iter Core.Journal.close js.log;
          outcome)
    in
    report_session ~questions:outcome.questions ~replayed:outcome.replayed
      ~pruned:outcome.pruned ~refused:outcome.refused ~retried:outcome.retried
      ();
    (match outcome.query with
    | Some h -> Format.printf "learned: %a@." Pathlearn.Words.pp h
    | None -> print_endline "no consistent query");
    exit_degraded_if ~breaker_open:outcome.breaker_open
      ~degraded:outcome.degraded "the hypothesis"
  in
  Cmd.v
    (Cmd.info "learn-path"
       ~doc:
         "Interactively learn a path query on a generated road network, \
          journaled and resumable with --journal/--resume.")
    Term.(const run $ telemetry_term $ pool_term $ seed_term $ cities_arg
          $ goal_arg $ budget_term $ journal_arg $ journal_sync_arg
          $ resume_arg $ checkpoint_every_arg $ crash_after_arg $ noise_arg
          $ refusal_arg $ timeout_rate_arg $ retries_arg $ breaker_arg)

(* ------------------------------------------------------------------ *)
(* exchange                                                            *)
(* ------------------------------------------------------------------ *)

let exchange_cmd =
  let scenario_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("1", 1); ("2", 2); ("3", 3); ("4", 4) ])) None
      & info [] ~docv:"SCENARIO" ~doc:"Figure-1 scenario number (1-4).")
  in
  let run () scenario seed =
    match scenario with
    | 1 ->
        let rng = Core.Prng.create seed in
        let inst =
          Relational.Generator.pair_instance ~rng ~left_rows:6 ~right_rows:6 ()
        in
        let space =
          Joinlearn.Signature.space
            ~left_arity:(Relational.Relation.arity inst.left)
            ~right_arity:(Relational.Relation.arity inst.right)
        in
        let goal = Joinlearn.Signature.of_predicate space inst.planted in
        let examples =
          Joinlearn.Interactive.items_of space inst.left inst.right
          |> List.map (fun (it : Joinlearn.Interactive.item) ->
                 ((it.left, it.right), Joinlearn.Signature.subset goal it.mask))
        in
        (match
           Exchange.Mapping.Rel_to_xml.run ~left:inst.left ~right:inst.right
             ~examples
         with
        | Some result -> print_string (Xmltree.Print.to_xml result.published)
        | None -> prerr_endline "learning failed")
    | 2 ->
        let doc = Benchkit.Xmark.generate ~scale:1.5 ~seed () in
        let annotations = Twig.Eval.select (Twig.Parse.query "//person") doc in
        (match
           Exchange.Mapping.Xml_to_rel.run ~doc ~annotations ~name:"person"
             ~columns:[ ("name", "name"); ("email", "emailaddress") ]
         with
        | Some result ->
            Format.printf "%a@." Relational.Relation.pp result.shredded
        | None -> prerr_endline "learning failed")
    | 3 ->
        let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed () in
        let annotations =
          Twig.Eval.select (Twig.Parse.query "//person/address") doc
        in
        (match Exchange.Mapping.Xml_to_rdf.run ~doc ~annotations with
        | Some result -> Format.printf "%a@." Exchange.Rdf.pp result.triples
        | None -> prerr_endline "learning failed")
    | 4 ->
        let rng = Core.Prng.create seed in
        let graph = Graphdb.Generators.geo ~rng ~cities:8 () in
        let goal =
          Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*")
        in
        let answers = Graphdb.Rpq.eval goal graph in
        let non_answer =
          List.concat_map
            (fun u -> List.init 8 (fun v -> (u, v)))
            (List.init 8 Fun.id)
          |> List.find (fun p -> not (List.mem p answers))
        in
        let examples =
          List.map (fun p -> (p, true)) (List.filteri (fun i _ -> i < 3) answers)
          @ [ (non_answer, false) ]
        in
        (match Exchange.Mapping.Graph_to_xml.run ~graph ~examples with
        | Some result -> print_string (Xmltree.Print.to_xml result.published)
        | None -> prerr_endline "learning failed")
    | _ -> assert false
  in
  Cmd.v
    (Cmd.info "exchange" ~doc:"Run a Figure-1 data-exchange scenario.")
    Term.(const run $ telemetry_term $ scenario_arg $ seed_term)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let iters_arg =
    Arg.(
      value & opt int 200
      & info [ "iters" ] ~docv:"N" ~doc:"Cases to run per oracle.")
  in
  let oracle_arg =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Run only the named oracle (repeatable; default all — see \
             $(b,--list)).")
  in
  let max_size_arg =
    Arg.(
      value & opt int 10
      & info [ "max-size" ] ~docv:"K"
          ~doc:"Generator size parameter cycles through 1..$(docv).")
  in
  let dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Write minimized counterexample artifacts into $(docv).")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a counterexample artifact: regenerate its input from the \
             recorded seed and re-run its oracle, then exit (0 when the bug \
             no longer reproduces, 1 when it still does).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the oracles and exit.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run the oracles on a pool of $(docv) domains (0 = one per \
             core).  Per-oracle PRNG streams are unchanged, so every oracle \
             sees the same cases at any job count; oracles that flip \
             process-global switches stay on the calling domain.")
  in
  let replay_artifact path =
    let art =
      match Fuzz.Artifact.load path with
      | Ok a -> a
      | Error msg ->
          or_die (Error (Core.Error.invalid_input ~what:"--replay" msg))
    in
    match Fuzz.Runner.replay art with
    | `Unknown_oracle n ->
        or_die
          (Error
             (Core.Error.invalid_input ~what:"--replay"
                (Printf.sprintf "artifact names unknown oracle %S" n)))
    | `Passed ->
        Printf.printf
          "replay %s (oracle %s, seed %d, size %d): PASSED — the recorded \
           bug no longer reproduces\n"
          path art.Fuzz.Artifact.oracle art.Fuzz.Artifact.seed
          art.Fuzz.Artifact.size;
        exit 0
    | `Failed reason ->
        Printf.printf
          "replay %s (oracle %s, seed %d, size %d): STILL FAILING\n  %s\n" path
          art.Fuzz.Artifact.oracle art.Fuzz.Artifact.seed
          art.Fuzz.Artifact.size reason;
        exit 1
  in
  let run () budget seed iters oracle_names max_size dir replay list_ jobs =
    if list_ then begin
      List.iter
        (fun o ->
          Printf.printf "%-18s %s\n" (Fuzz.Oracle.name o) (Fuzz.Oracle.about o))
        Fuzz.Oracle.all;
      exit 0
    end;
    match replay with
    | Some path -> replay_artifact path
    | None ->
        let oracles =
          match oracle_names with
          | [] -> Fuzz.Oracle.all
          | names ->
              List.map
                (fun n ->
                  match Fuzz.Oracle.find n with
                  | Some o -> o
                  | None ->
                      or_die
                        (Error
                           (Core.Error.invalid_input ~what:"--oracle"
                              (Printf.sprintf
                                 "%S is not an oracle (try --list)" n))))
                names
        in
        let jobs =
          if jobs = 0 then Core.Pool.recommended_size () else max 1 jobs
        in
        let report =
          Fuzz.Runner.run ~oracles ~budget ?dir ~max_size ~jobs ~iters ~seed ()
        in
        List.iter
          (fun (s : Fuzz.Runner.stats) ->
            Printf.printf "%-18s %6d runs  %s\n" s.oracle s.runs
              (if s.failures = 0 then "ok" else "FAILED"))
          report.stats;
        List.iter
          (fun (c : Fuzz.Runner.counterexample) ->
            let a = c.artifact in
            Printf.printf
              "\ncounterexample: %s (seed %d, size %d; shrunk to %d nodes in \
               %d steps)\n  %s\n%s"
              a.Fuzz.Artifact.oracle a.Fuzz.Artifact.seed a.Fuzz.Artifact.size
              a.Fuzz.Artifact.shrunk_size a.Fuzz.Artifact.steps
              a.Fuzz.Artifact.reason
              (match c.path with
              | Some p -> Printf.sprintf "  saved: %s (replay with --replay)\n" p
              | None ->
                  Printf.sprintf "  input:\n    %s\n"
                    (String.concat "\n    "
                       (String.split_on_char '\n' a.Fuzz.Artifact.input))))
          report.counterexamples;
        if report.interrupted then begin
          prerr_endline "learnq: fuzzing budget exhausted before completion";
          exit Core.Error.exit_budget
        end;
        if report.counterexamples <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random structured inputs checked against \
          cross-engine oracles, with greedy shrinking and replayable \
          counterexample artifacts.")
    Term.(
      const run $ telemetry_term $ budget_term $ seed_term $ iters_arg
      $ oracle_arg $ max_size_arg $ dir_arg $ replay_arg $ list_arg
      $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "TCP port (0 picks an ephemeral port).  The bound port is \
             announced on stdout as $(b,listening on ADDR:PORT).")
  in
  let state_dir_arg =
    Arg.(
      value & opt string "./learnq-state"
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Session journals live here, one file per session.  On startup \
             every journal in $(docv) is resumed — a killed daemon restarted \
             on the same directory carries on where it died.")
  in
  let serve_pool_arg =
    Arg.(
      value & opt int 2
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Domains executing session batches (and recovering journals).  \
             Even on one core >1 pays: a session blocked in fsync overlaps \
             with another session's compute.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission-queue bound; beyond it requests are shed with 503 + \
             Retry-After.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 128
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent connections; excess are refused with 503.")
  in
  let io_threads_arg =
    Arg.(
      value & opt int 4
      & info [ "io-threads" ] ~docv:"N"
          ~doc:
            "Worker threads executing request handlers.  The connection \
             multiplexer parks idle keep-alive connections on a poll loop \
             at zero thread cost, so the server's whole I/O thread budget \
             is $(docv)+1 regardless of how many clients stay connected.")
  in
  let max_idle_conns_arg =
    Arg.(
      value & opt int 0
      & info [ "max-idle-conns" ] ~docv:"N"
          ~doc:
            "Cap on parked idle keep-alive connections (0 = unlimited); \
             beyond it the longest-idle are closed first.")
  in
  let request_deadline_arg =
    Arg.(
      value & opt float 30.
      & info [ "request-deadline" ] ~docv:"SECS"
          ~doc:
            "Slow-request deadline: a request whose bytes are still \
             trickling in $(docv) seconds after its first byte gets a 408 \
             and the connection is closed — without ever costing a \
             thread.")
  in
  let tenants_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenants" ] ~docv:"FILE"
          ~doc:
            "Tenant quota file: one $(b,name max_sessions=N fuel=N \
             timeout=SECS) line per tenant ($(b,#) comments); the \
             $(b,default) line covers unlisted tenants.")
  in
  let step_fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "step-fuel" ] ~docv:"N"
          ~doc:
            "Server-wide fuel budget per learning step (tenant quotas \
             override).  An exhausted step degrades the session — current \
             candidate stands, journal stays resumable.")
  in
  let step_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "step-timeout" ] ~docv:"SECS"
          ~doc:"Server-wide wall-clock budget per learning step.")
  in
  let drain_grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECS"
          ~doc:
            "How long a SIGTERM-triggered drain waits for in-flight \
             connections before syncing journals and exiting.")
  in
  let serve_checkpoint_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Checkpoint each session's accumulator and compact its journal \
             down to header + snapshot every $(docv) answers (0 = never).  \
             Bounds journal growth and makes resume O(tail) instead of \
             O(history).")
  in
  let max_live_sessions_arg =
    Arg.(
      value & opt int 0
      & info [ "max-live-sessions" ] ~docv:"N"
          ~doc:
            "Keep at most $(docv) sessions live in memory (0 = unlimited); \
             beyond it the least-recently-used are checkpointed, compacted, \
             and closed.  Requests touching an evicted session transparently \
             resume it from its journal.")
  in
  let idle_evict_arg =
    Arg.(
      value & opt float 0.
      & info [ "idle-evict-after" ] ~docv:"SECS"
          ~doc:
            "Evict sessions untouched for $(docv) seconds (0 = never), \
             same checkpoint-then-resume-on-demand lifecycle as \
             $(b,--max-live-sessions).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 250.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Requests taking at least $(docv) milliseconds land in the \
             $(b,/debug/slow) ring (the last 64, with trace ids).")
  in
  let stall_after_arg =
    Arg.(
      value & opt float 30.
      & info [ "stall-after" ] ~docv:"SECS"
          ~doc:
            "Watchdog deadline: a request in flight longer than $(docv) \
             seconds is flagged as stalled (counted in /stats and \
             /metrics, flight recorder dumped) but never killed.")
  in
  let flight_recorder_size_arg =
    Arg.(
      value & opt int 0
      & info [ "flight-recorder-size" ] ~docv:"N"
          ~doc:
            "Total flight-recorder capacity in events (0 keeps the \
             default of 4096).  The recorder is a fixed-size in-memory \
             ring of recent server events, dumped as Chrome-trace JSON \
             on quarantine or watchdog stall and served at \
             $(b,/debug/flightrecorder).")
  in
  let debug_endpoints_arg =
    Arg.(
      value & opt bool true
      & info [ "debug-endpoints" ] ~docv:"BOOL"
          ~doc:
            "Serve the $(b,/debug/*) introspection routes (sessions, \
             tenants, slow, flightrecorder).  Disable on exposed \
             deployments.")
  in
  let run () host port state_dir pool max_queue max_conns io_threads
      max_idle_conns request_deadline tenants_file step_fuel step_timeout
      sync drain_grace checkpoint_every max_live_sessions idle_evict_after
      slow_ms stall_after flight_recorder_size debug_endpoints =
    let tenants =
      match tenants_file with
      | None -> Server.Tenant.make []
      | Some path -> (
          match Server.Tenant.load path with
          | Ok t -> t
          | Error msg ->
              or_die
                (Error (Core.Error.invalid_input ~what:"--tenants" msg)))
    in
    let cfg =
      {
        Server.Daemon.host;
        port;
        state_dir;
        pool;
        max_queue;
        max_conns;
        io_threads;
        max_idle_conns;
        request_deadline;
        sync = Option.value ~default:Core.Journal.Batch sync;
        tenants;
        step_fuel;
        step_timeout;
        drain_grace;
        on_listen =
          (fun p -> Printf.printf "listening on %s:%d\n%!" host p);
        vfs = Core.Vfs.real;
        checkpoint_every;
        max_live_sessions;
        idle_evict_after;
        slow_ms;
        stall_after;
        flight_recorder_size;
        debug_endpoints;
      }
    in
    let daemon = Server.Daemon.create cfg in
    (* SIGTERM/SIGINT start the drain: stop admitting, finish the backlog,
       sync every journal, exit 0.  The handler only flips a flag. *)
    let stop _ = Server.Daemon.drain daemon in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    match Server.Daemon.serve daemon with
    | Ok () -> ()
    | Error msg ->
        or_die (Error (Core.Error.invalid_input ~what:"serve" msg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant session server: thousands of concurrent \
          interactive learning sessions over line-delimited HTTP/JSON, \
          journal-backed so a crash loses nothing, with per-tenant quotas, \
          admission control, and graceful drain on SIGTERM.")
    Term.(
      const run $ telemetry_term $ host_arg $ port_arg $ state_dir_arg
      $ serve_pool_arg $ max_queue_arg $ max_conns_arg $ io_threads_arg
      $ max_idle_conns_arg $ request_deadline_arg $ tenants_arg
      $ step_fuel_arg $ step_timeout_arg $ journal_sync_arg $ drain_grace_arg
      $ serve_checkpoint_arg $ max_live_sessions_arg $ idle_evict_arg
      $ slow_ms_arg $ stall_after_arg $ flight_recorder_size_arg
      $ debug_endpoints_arg)

let () =
  let info =
    Cmd.info "learnq" ~version:"1.0.0"
      ~doc:"Learning queries for relational, semi-structured, and graph databases."
  in
  let group =
    Cmd.group info
      [
        xmark_cmd;
        validate_cmd;
        schema_contain_cmd;
        gen_doc_cmd;
        infer_schema_cmd;
        learn_twig_cmd;
        learn_join_cmd;
        learn_path_cmd;
        exchange_cmd;
        serve_cmd;
        fuzz_cmd;
      ]
  in
  (* ~catch:false: structured failures only, never a raw backtrace. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Core.Budget.Out_of_budget -> exit Core.Error.exit_budget
  | exception Sys_error msg ->
      Printf.eprintf "learnq: %s\n" msg;
      exit Core.Error.exit_bad_input
  | exception (Xmltree.Parse.Syntax_error msg
              | Twig.Parse.Syntax_error msg
              | Relational.Csv.Syntax_error msg) ->
      Printf.eprintf "learnq: %s\n" msg;
      exit Core.Error.exit_bad_input
  | exception (Failure msg | Invalid_argument msg) ->
      Printf.eprintf "learnq: %s\n" msg;
      exit Core.Error.exit_bad_input
