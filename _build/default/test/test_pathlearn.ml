(* Tests for path-query learning: expressions, word learning, pair learning
   with refinement, interactive path labeling. *)

let qcheck = QCheck_alcotest.to_alcotest

let w s = if s = "" then [] else String.split_on_char '.' s
let dfa s = Automata.Dfa.of_regex (Automata.Regex.parse s)

(* ------------------------------------------------------------------ *)
(* Path expressions                                                    *)
(* ------------------------------------------------------------------ *)

let test_expr_matches () =
  let e = [ Pathlearn.Expr.Sym "h"; Pathlearn.Expr.Star "h"; Pathlearn.Expr.Sym "r" ] in
  Alcotest.(check bool) "hr" true (Pathlearn.Expr.matches e (w "h.r"));
  Alcotest.(check bool) "hhhr" true (Pathlearn.Expr.matches e (w "h.h.h.r"));
  Alcotest.(check bool) "r" false (Pathlearn.Expr.matches e (w "r"));
  Alcotest.(check bool) "h" false (Pathlearn.Expr.matches e (w "h"));
  Alcotest.(check bool) "eps vs eps expr" true (Pathlearn.Expr.matches [] [])

let test_expr_to_regex () =
  let e = [ Pathlearn.Expr.Sym "a"; Pathlearn.Expr.Star "b" ] in
  let d = Pathlearn.Expr.to_dfa e in
  Alcotest.(check bool) "agree" true
    (Automata.Dfa.equal_language d (dfa "a b*"))

let test_generalize_word () =
  Alcotest.(check string) "runs collapse" "h h* r"
    (Pathlearn.Expr.to_string (Pathlearn.Expr.generalize_word (w "h.h.h.r")));
  Alcotest.(check string) "singletons stay" "h r"
    (Pathlearn.Expr.to_string (Pathlearn.Expr.generalize_word (w "h.r")))

let test_star_all () =
  Alcotest.(check string) "coarsest" "h* r*"
    (Pathlearn.Expr.to_string (Pathlearn.Expr.star_all (w "h.h.r")))

let test_expr_learn () =
  (match Pathlearn.Expr.learn ~pos:[ w "h"; w "h.h.h" ] ~neg:[ []; w "r" ] with
  | Some e ->
      Alcotest.(check bool) "h+ shape" true
        (Pathlearn.Expr.matches e (w "h.h")
        && (not (Pathlearn.Expr.matches e []))
        && not (Pathlearn.Expr.matches e (w "r")))
  | None -> Alcotest.fail "learnable");
  Alcotest.(check bool) "no positives" true
    (Pathlearn.Expr.learn ~pos:[] ~neg:[ w "x" ] = None)

let test_expr_learn_smallest () =
  (* With no negatives, the learner prefers the smallest candidate. *)
  match Pathlearn.Expr.learn ~pos:[ w "a.a.a" ] ~neg:[] with
  | Some e ->
      Alcotest.(check bool) "collapsed not literal" true
        (Pathlearn.Expr.size e <= 2)
  | None -> Alcotest.fail "learnable"

let test_expr_of_dfa () =
  (match Pathlearn.Expr.of_dfa (dfa "h h* r") with
  | Some e -> Alcotest.(check string) "chain recovered" "h h* r" (Pathlearn.Expr.to_string e)
  | None -> Alcotest.fail "linear DFA must convert");
  (* A genuinely branching language has no path-expression form. *)
  Alcotest.(check bool) "union rejected" true
    (Pathlearn.Expr.of_dfa (dfa "a b | b a") = None)

let prop_generalize_matches_word =
  let gen_word = QCheck.Gen.(list_size (1 -- 8) (oneofl [ "a"; "b" ])) in
  QCheck.Test.make ~name:"generalize_word matches its word" ~count:300
    (QCheck.make gen_word)
    (fun word ->
      Pathlearn.Expr.matches (Pathlearn.Expr.generalize_word word) word
      && Pathlearn.Expr.matches (Pathlearn.Expr.star_all word) word)

let prop_expr_matches_agrees_with_dfa =
  let gen_word = QCheck.Gen.(list_size (0 -- 6) (oneofl [ "a"; "b" ])) in
  let gen_expr =
    QCheck.Gen.(
      list_size (0 -- 4)
        (map2
           (fun star sym ->
             if star then Pathlearn.Expr.Star sym else Pathlearn.Expr.Sym sym)
           bool (oneofl [ "a"; "b" ])))
  in
  QCheck.Test.make ~name:"Expr.matches agrees with its DFA" ~count:300
    (QCheck.pair (QCheck.make gen_expr) (QCheck.make gen_word))
    (fun (e, word) ->
      Pathlearn.Expr.matches e word
      = Automata.Dfa.accepts (Pathlearn.Expr.to_dfa e) word)

(* ------------------------------------------------------------------ *)
(* Word-level learning                                                 *)
(* ------------------------------------------------------------------ *)

let test_words_learn_prefers_expr () =
  match Pathlearn.Words.learn ~pos:[ w "h"; w "h.h" ] ~neg:[ w "r" ] with
  | Some h ->
      Alcotest.(check bool) "path-expression form found" true (h.expr <> None)
  | None -> Alcotest.fail "learnable"

let test_words_learn_falls_back_to_rpni () =
  (* Odd-length a-words are regular but not a path expression. *)
  match
    Pathlearn.Words.learn ~pos:[ w "a"; w "a.a.a" ] ~neg:[ []; w "a.a" ]
  with
  | Some h ->
      Alcotest.(check bool) "consistent" true
        (Pathlearn.Words.selects h (w "a")
        && not (Pathlearn.Words.selects h (w "a.a")))
  | None -> Alcotest.fail "RPNI fallback must fire"

let test_words_learn_contradiction () =
  Alcotest.(check bool) "contradictory sample" true
    (Pathlearn.Words.learn ~pos:[ w "a" ] ~neg:[ w "a" ] = None)

(* ------------------------------------------------------------------ *)
(* Pair-level learning on a graph                                      *)
(* ------------------------------------------------------------------ *)

(* 0 -h-> 1 -h-> 2 -h-> 3, plus 0 -r-> 3 and 3 -r-> 0. *)
let chain =
  Graphdb.Graph.make ~nodes:4
    [ (0, "h", 1); (1, "h", 2); (2, "h", 3); (0, "r", 3); (3, "r", 0) ]

let test_pairs_learn_highway () =
  let examples =
    [
      Core.Example.positive (0, 1);
      Core.Example.positive (0, 2);
      Core.Example.negative (3, 0);
    ]
  in
  match Pathlearn.Pairs.learn chain examples with
  | None -> Alcotest.fail "learnable"
  | Some h ->
      Alcotest.(check bool) "selects positives" true
        (Pathlearn.Pairs.selects h chain (0, 1)
        && Pathlearn.Pairs.selects h chain (0, 2));
      Alcotest.(check bool) "rejects negative" false
        (Pathlearn.Pairs.selects h chain (3, 0))

let test_pairs_refinement_kicks_in () =
  (* (0,3) positive via h.h.h — but the shortest connecting word is r,
     which also connects the negative (3,0).  The learner must discard the
     r witness and refine to the h-path. *)
  let examples =
    [ Core.Example.positive (0, 3); Core.Example.negative (3, 0) ]
  in
  match Pathlearn.Pairs.learn chain examples with
  | None -> Alcotest.fail "learnable with refinement"
  | Some h ->
      Alcotest.(check bool) "positive selected" true
        (Pathlearn.Pairs.selects h chain (0, 3));
      Alcotest.(check bool) "negative rejected" false
        (Pathlearn.Pairs.selects h chain (3, 0))

let test_pairs_unreachable_positive () =
  let g2 = Graphdb.Graph.make ~nodes:2 [ (0, "a", 1) ] in
  let examples = [ Core.Example.positive (1, 0) ] in
  Alcotest.(check bool) "no path, no query" true
    (Pathlearn.Pairs.learn g2 examples = None)

let test_pairs_on_geo () =
  let rng = Core.Prng.create 23 in
  let geo = Graphdb.Generators.geo ~rng ~cities:12 () in
  let goal = dfa "highway highway*" in
  let answers = Graphdb.Rpq.eval goal geo in
  QCheck.assume (List.length answers >= 4);
  let pos = List.filteri (fun i _ -> i < 3) answers in
  let neg =
    List.concat_map
      (fun u -> List.init 12 (fun v -> (u, v)))
      (List.init 12 Fun.id)
    |> List.filter (fun p -> not (List.mem p answers))
    |> List.filteri (fun i _ -> i < 3)
  in
  let examples =
    List.map Core.Example.positive pos @ List.map Core.Example.negative neg
  in
  match Pathlearn.Pairs.learn geo examples with
  | None -> Alcotest.fail "geo goal learnable"
  | Some h ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "positive pair selected" true
            (Pathlearn.Pairs.selects h geo p))
        pos;
      List.iter
        (fun p ->
          Alcotest.(check bool) "negative pair rejected" false
            (Pathlearn.Pairs.selects h geo p))
        neg

(* ------------------------------------------------------------------ *)
(* Interactive                                                         *)
(* ------------------------------------------------------------------ *)

let test_interactive_consistent () =
  let rng = Core.Prng.create 31 in
  let graph = Graphdb.Generators.geo ~rng ~cities:8 () in
  let goal = dfa "highway highway*" in
  let outcome = Pathlearn.Interactive.run_with_goal ~rng ~graph ~goal () in
  match outcome.query with
  | None -> Alcotest.fail "hypothesis expected"
  | Some h ->
      List.iter
        (fun ((item : Pathlearn.Interactive.item), label) ->
          Alcotest.(check bool) "answer respected" label
            (Pathlearn.Words.selects h item.word))
        outcome.asked

let test_interactive_dedups_words () =
  let rng = Core.Prng.create 37 in
  let graph = Graphdb.Generators.geo ~rng ~cities:8 () in
  let goal = dfa "highway" in
  let outcome = Pathlearn.Interactive.run_with_goal ~rng ~graph ~goal () in
  let asked_words = List.map (fun ((it : Pathlearn.Interactive.item), _) -> it.word) outcome.asked in
  Alcotest.(check int) "each word asked once"
    (List.length (List.sort_uniq compare asked_words))
    (List.length asked_words);
  Alcotest.(check bool) "many paths pruned" true (outcome.pruned > 0)

let test_workload_strategy_prefers_prior () =
  let rng = Core.Prng.create 41 in
  let graph = Graphdb.Generators.geo ~rng ~cities:8 () in
  let goal = dfa "highway highway*" in
  let prior = [ dfa "highway highway* | highway" ] in
  let outcome =
    Pathlearn.Interactive.run_with_goal ~rng
      ~strategy:(Pathlearn.Interactive.workload_strategy ~prior)
      ~graph ~goal ()
  in
  (* The first question goes to a prior-matching (highway) path. *)
  match outcome.asked with
  | ((first : Pathlearn.Interactive.item), _) :: _ ->
      Alcotest.(check bool) "first question follows the workload prior" true
        (List.for_all (String.equal "highway") first.word)
  | [] -> Alcotest.fail "questions expected"

let () =
  Alcotest.run "pathlearn"
    [
      ( "expr",
        [
          Alcotest.test_case "matches" `Quick test_expr_matches;
          Alcotest.test_case "to_regex" `Quick test_expr_to_regex;
          Alcotest.test_case "generalize_word" `Quick test_generalize_word;
          Alcotest.test_case "star_all" `Quick test_star_all;
          Alcotest.test_case "learn" `Quick test_expr_learn;
          Alcotest.test_case "learn smallest" `Quick test_expr_learn_smallest;
          Alcotest.test_case "of_dfa" `Quick test_expr_of_dfa;
          qcheck prop_generalize_matches_word;
          qcheck prop_expr_matches_agrees_with_dfa;
        ] );
      ( "words",
        [
          Alcotest.test_case "prefers expressions" `Quick test_words_learn_prefers_expr;
          Alcotest.test_case "falls back to RPNI" `Quick test_words_learn_falls_back_to_rpni;
          Alcotest.test_case "contradiction" `Quick test_words_learn_contradiction;
        ] );
      ( "pairs",
        [
          Alcotest.test_case "learn highway" `Quick test_pairs_learn_highway;
          Alcotest.test_case "refinement" `Quick test_pairs_refinement_kicks_in;
          Alcotest.test_case "unreachable positive" `Quick test_pairs_unreachable_positive;
          Alcotest.test_case "geo workload" `Slow test_pairs_on_geo;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "consistent" `Slow test_interactive_consistent;
          Alcotest.test_case "dedups words" `Slow test_interactive_dedups_words;
          Alcotest.test_case "workload prior" `Slow test_workload_strategy_prefers_prior;
        ] );
    ]
