type instance = Xmltree.Annotated.t

module Concept = struct
  type query = Twig.Query.t
  type nonrec instance = instance

  let selects = Twig.Eval.selects_example
  let pp_query = Twig.Query.pp
  let pp_instance = Xmltree.Annotated.pp
end

let characteristic (a : instance) = Twig.Query.of_example a.doc a.target

let m_lgg = Core.Telemetry.Metrics.counter "learnq.twiglearn.lgg_calls"

let learn_positive = function
  | [] -> None
  | examples -> (
      Core.Telemetry.Metrics.incr m_lgg;
      Core.Telemetry.with_span "twig.lgg" @@ fun () ->
      let queries = List.map characteristic examples in
      match Twig.Lgg.lgg_all queries with
      | None -> None
      | Some merged ->
          let q = Twig.Lgg.minimize merged in
          if Twig.Query.is_anchored q then Some q else None)

let learn_path examples =
  match learn_positive examples with
  | None -> None
  | Some q -> Some (Twig.Query.strip_filters q)
