lib/relational/generator.ml: Algebra Array Core Fun List Printf Relation Value
