let geo ~rng ?(cities = 20) ?extra_roads ?ferries () =
  let extra_roads =
    match extra_roads with Some r -> r | None -> 2 * cities
  in
  let ferries = match ferries with Some f -> f | None -> cities / 5 in
  let names = Array.init cities (fun i -> Printf.sprintf "city%d" i) in
  let backbone =
    Core.Prng.sample rng (max 2 (cities / 2)) (List.init cities Fun.id)
  in
  let rec ring acc = function
    | [] -> acc
    | [ last ] -> (
        match backbone with
        | first :: _ when first <> last ->
            (last, "highway", first) :: (first, "highway", last) :: acc
        | _ -> acc)
    | a :: (b :: _ as rest) ->
        ring ((a, "highway", b) :: (b, "highway", a) :: acc) rest
  in
  let highways = ring [] backbone in
  let random_edge label =
    let src = Core.Prng.int rng cities in
    let dst = Core.Prng.int rng cities in
    (src, label, dst)
  in
  let roads = List.init extra_roads (fun _ -> random_edge "road") in
  let ferry_edges = List.init ferries (fun _ -> random_edge "ferry") in
  Graph.make ~names ~nodes:cities (highways @ roads @ ferry_edges)



let random ~rng ~nodes ~edges ~labels =
  if labels = [] then invalid_arg "Generators.random: empty label set";
  let edge _ =
    ( Core.Prng.int rng nodes,
      Core.Prng.pick rng labels,
      Core.Prng.int rng nodes )
  in
  Graph.make ~nodes (List.init edges edge)
