(** Replayable counterexample artifacts.

    A failing fuzz case is fully determined by [(oracle, seed, size)] —
    generators are pure functions of the PRNG — so an artifact records those
    three plus human-facing context: the failure reason and the pretty-print
    of the {e shrunk} input.  [learnq fuzz --replay FILE] regenerates the
    input from the recorded seed and re-runs the oracle, so an artifact
    stays actionable after the printed input's syntax drifts. *)

type t = {
  oracle : string;  (** {!Oracle} name *)
  seed : int;  (** per-case seed (not the master seed) *)
  size : int;  (** generator size parameter *)
  steps : int;  (** shrink steps taken *)
  shrunk_size : int;  (** {!Oracle} size measure of the minimum *)
  reason : string;  (** first line of the oracle's failure message *)
  input : string;  (** pretty-printed shrunk input (display only) *)
}

val to_string : t -> string
val of_string : string -> (t, string) result

val write : dir:string -> t -> string
(** Saves under [dir] (created if missing) as
    [<oracle>-seed<seed>.counterexample]; returns the path. *)

val load : string -> (t, string) result
