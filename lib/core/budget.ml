type stats = {
  fuel_spent : int;
  elapsed : float;
  fuel_limit : int option;
  timeout : float option;
}

type t = {
  fuel_limit : int option;
  timeout : float option;
  started : float;
  mutable fuel_spent : int;
  mutable next_clock_check : int;
  mutable tripped : bool;
  mutable cancelled : bool;
}

type 'a outcome = Done of 'a | Exhausted of { partial : 'a option; spent : stats }

exception Out_of_budget

(* Reading the clock costs ~25ns but ticks sit in the innermost enumeration
   loops; consult the clock only every so many ticks. *)
let clock_check_interval = 256

(* Deadlines are measured on the monotonic clock: gettimeofday jumps under
   NTP adjustment, which can fire a deadline early or postpone it forever. *)
let create ?fuel ?timeout () =
  {
    fuel_limit = fuel;
    timeout;
    started = Monotonic.now ();
    fuel_spent = 0;
    next_clock_check = 0;
    tripped = false;
    cancelled = false;
  }

let unlimited () = create ()
let is_unlimited b = b.fuel_limit = None && b.timeout = None
let elapsed b = Monotonic.now () -. b.started

let remaining b =
  match b.timeout with None -> None | Some s -> Some (s -. elapsed b)

let stats b =
  {
    fuel_spent = b.fuel_spent;
    elapsed = elapsed b;
    fuel_limit = b.fuel_limit;
    timeout = b.timeout;
  }

let cancel b = b.cancelled <- true

let over_deadline b =
  match b.timeout with None -> false | Some s -> elapsed b >= s

let exhausted b =
  b.tripped || b.cancelled
  || (match b.fuel_limit with Some l -> b.fuel_spent >= l | None -> false)
  || over_deadline b

let m_exhausted = Telemetry.Metrics.counter "learnq.budget.exhausted"
let m_fuel = Telemetry.Metrics.counter "learnq.budget.fuel_spent"

(* [trip] fires on every tick after exhaustion as the exception unwinds
   through nested loops; count only the first transition. *)
let trip b =
  if not b.tripped then begin
    Telemetry.Metrics.incr m_exhausted;
    if b.fuel_spent > 0 then Telemetry.Metrics.incr m_fuel ~by:b.fuel_spent;
    Telemetry.Log.warn
      ~kv:[ ("fuel_spent", string_of_int b.fuel_spent) ]
      "budget exhausted"
  end;
  b.tripped <- true;
  raise Out_of_budget

let tick ?(cost = 1) b =
  b.fuel_spent <- b.fuel_spent + cost;
  if b.tripped || b.cancelled then trip b;
  (match b.fuel_limit with
  | Some l when b.fuel_spent > l -> trip b
  | _ -> ());
  match b.timeout with
  | Some _ when b.fuel_spent >= b.next_clock_check ->
      b.next_clock_check <- b.fuel_spent + clock_check_interval;
      if over_deadline b then trip b
  | _ -> ()

let run ?partial b f =
  match f () with
  | v -> Done v
  | exception Out_of_budget ->
      let partial = match partial with None -> None | Some g -> g () in
      Exhausted { partial; spent = stats b }
