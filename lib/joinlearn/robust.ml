type outcome = {
  theta : Signature.mask;
  training_errors : int;
  ignored : int;
}

let errors_of theta examples =
  List.length
    (List.filter
       (fun (e : _ Core.Example.t) ->
         Signature.subset theta e.value <> Core.Example.is_positive e)
       examples)

let learn ?budget space examples =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  let positives =
    List.filter Core.Example.is_positive examples
    |> List.map (fun (e : _ Core.Example.t) -> e.value)
  in
  let theta_of kept = Join.most_specific space kept in
  let rec improve kept ignored =
    let current = errors_of (theta_of kept) examples in
    (* Try excluding each kept positive signature from the intersection.
       Budget exhaustion mid-scan just stops the greedy descent: the current
       predicate is already a sound (if less polished) answer. *)
    let best =
      match
        List.filter_map
          (fun s ->
            Core.Budget.tick ~cost:(List.length examples) budget;
            let kept' = List.filter (fun s' -> s' != s) kept in
            let e = errors_of (theta_of kept') examples in
            if e < current then Some (kept', e) else None)
          kept
      with
      | exception Core.Budget.Out_of_budget -> None
      | candidates -> (
          match
            List.sort (fun (_, e1) (_, e2) -> compare e1 e2) candidates
          with
          | [] -> None
          | best :: _ -> Some best)
    in
    match best with
    | Some (kept', _) -> improve kept' (ignored + 1)
    | None -> (kept, ignored, current)
  in
  let kept, ignored, training_errors = improve positives 0 in
  { theta = theta_of kept; training_errors; ignored }
