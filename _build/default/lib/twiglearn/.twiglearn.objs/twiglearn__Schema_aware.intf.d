lib/twiglearn/schema_aware.mli: Twig Uschema Xmltree
