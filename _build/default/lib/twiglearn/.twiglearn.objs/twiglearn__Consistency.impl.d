lib/twiglearn/consistency.ml: Core Enumerate List Positive Seq Set String Twig Xmltree
