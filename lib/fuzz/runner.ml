type stats = { oracle : string; runs : int; failures : int }
type counterexample = { artifact : Artifact.t; path : string option }

type report = {
  stats : stats list;
  counterexamples : counterexample list;
  interrupted : bool;
}

(* Stable string hash (FNV-1a, truncated): per-oracle seed derivation must
   not depend on [Hashtbl.hash]'s compiler-version-specific behavior, or
   recorded artifacts would stop replaying across toolchains. *)
let fnv s =
  String.fold_left
    (fun h c -> (h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    0x811C9DC5 s

let safe_check check x =
  match check x with
  | r -> r
  | exception Core.Budget.Out_of_budget -> raise Core.Budget.Out_of_budget
  | exception e -> Error ("exception: " ^ Printexc.to_string e)

let m_cases = Core.Telemetry.Metrics.counter "learnq.fuzz.cases"
let m_failures = Core.Telemetry.Metrics.counter "learnq.fuzz.failures"
let m_shrink_steps = Core.Telemetry.Metrics.counter "learnq.fuzz.shrink_steps"

let run_oracle (Oracle.Spec o) ~budget ~dir ~max_size ~iters ~seed =
  Core.Telemetry.with_span ("fuzz." ^ o.Oracle.name) @@ fun () ->
  let stream = Core.Prng.create (seed + fnv o.Oracle.name) in
  let runs = ref 0 in
  let result = ref None in
  (try
     for i = 0 to iters - 1 do
       if !result = None then begin
         Core.Budget.tick budget;
         incr runs;
         Core.Telemetry.Metrics.incr m_cases;
         let case_seed =
           Int64.to_int (Core.Prng.next_int64 stream) land max_int
         in
         let size = 1 + (i mod max_size) in
         let g = Core.Prng.create case_seed in
         match o.Oracle.generate g ~size with
         | exception e ->
             result :=
               Some
                 { Artifact.oracle = o.Oracle.name;
                   seed = case_seed;
                   size;
                   steps = 0;
                   shrunk_size = 0;
                   reason = "generator raised: " ^ Printexc.to_string e;
                   input = "<generator raised before producing an input>";
                 }
         | x -> (
             match safe_check o.Oracle.check x with
             | Ok () -> ()
             | Error reason0 ->
                 let still_failing y =
                   Result.is_error (safe_check o.Oracle.check y)
                 in
                 let shrunk, steps =
                   Shrink.minimize ~candidates:o.Oracle.candidates
                     ~still_failing x
                 in
                 Core.Telemetry.Metrics.incr ~by:steps m_shrink_steps;
                 let reason =
                   match safe_check o.Oracle.check shrunk with
                   | Error r -> r
                   | Ok () -> reason0
                 in
                 result :=
                   Some
                     { Artifact.oracle = o.Oracle.name;
                       seed = case_seed;
                       size;
                       steps;
                       shrunk_size = o.Oracle.size_of shrunk;
                       reason;
                       input = o.Oracle.print shrunk;
                     })
       end
     done;
     Ok ()
   with Core.Budget.Out_of_budget -> Error ())
  |> fun outcome ->
  let failure =
    match !result with
    | None -> []
    | Some artifact ->
        Core.Telemetry.Metrics.incr m_failures;
        Core.Telemetry.Log.warn
          ~kv:
            [ ("oracle", o.Oracle.name);
              ("seed", string_of_int artifact.Artifact.seed);
              ("shrunk_size", string_of_int artifact.Artifact.shrunk_size);
            ]
          ("fuzz counterexample: " ^ artifact.Artifact.reason);
        let path = Option.map (fun d -> Artifact.write ~dir:d artifact) dir in
        [ { artifact; path } ]
  in
  ( { oracle = o.Oracle.name; runs = !runs; failures = List.length failure },
    failure,
    Result.is_error outcome )

let run_sequential ~oracles ~budget ~dir ~max_size ~iters ~seed =
  let interrupted = ref false in
  let stats, cexs =
    List.fold_left
      (fun (stats, cexs) oracle ->
        if !interrupted then (stats, cexs)
        else
          let st, cex, hit_budget =
            run_oracle oracle ~budget ~dir ~max_size ~iters ~seed
          in
          if hit_budget then interrupted := true;
          (st :: stats, cex @ cexs))
      ([], []) oracles
  in
  { stats = List.rev stats;
    counterexamples = List.rev cexs;
    interrupted = !interrupted;
  }

(* Parallel mode: oracles are independent jobs — each owns its PRNG
   stream (derived from the master seed and its name, exactly as in
   sequential mode), its own temp files, and its own Domain.DLS caches —
   so running them on a pool changes nothing about any oracle's cases.
   Oracles flagged {!Oracle.serial} mutate process-global switches and
   run on the calling domain after the parallel batch.  Stats keep the
   input oracle order.  The only observable difference from jobs=1 is
   under a budget: sequential mode stops scheduling oracles once the
   fuel runs out, while parallel mode reports a (possibly interrupted)
   entry for every oracle. *)
let run_parallel ~oracles ~budget ~dir ~max_size ~iters ~seed ~jobs =
  let arr = Array.of_list oracles in
  let results = Array.make (Array.length arr) None in
  let parallel, serial =
    List.partition
      (fun i -> not (Oracle.serial arr.(i)))
      (List.init (Array.length arr) Fun.id)
  in
  let pool = Core.Pool.create jobs in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      let par = Array.of_list parallel in
      let out =
        Core.Pool.map_array pool
          (fun i -> run_oracle arr.(i) ~budget ~dir ~max_size ~iters ~seed)
          par
      in
      Array.iteri (fun k i -> results.(i) <- Some out.(k)) par;
      List.iter
        (fun i ->
          results.(i) <-
            Some (run_oracle arr.(i) ~budget ~dir ~max_size ~iters ~seed))
        serial);
  let stats = ref [] and cexs = ref [] and interrupted = ref false in
  for i = Array.length arr - 1 downto 0 do
    match results.(i) with
    | None -> ()
    | Some (st, cex, hit_budget) ->
        if hit_budget then interrupted := true;
        stats := st :: !stats;
        cexs := cex @ !cexs
  done;
  { stats = !stats; counterexamples = !cexs; interrupted = !interrupted }

let run ?(oracles = Oracle.all) ?budget ?dir ?(max_size = 10) ?(jobs = 1)
    ~iters ~seed () =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  if jobs <= 1 then run_sequential ~oracles ~budget ~dir ~max_size ~iters ~seed
  else run_parallel ~oracles ~budget ~dir ~max_size ~iters ~seed ~jobs

let replay (a : Artifact.t) =
  match Oracle.find a.Artifact.oracle with
  | None -> `Unknown_oracle a.Artifact.oracle
  | Some (Oracle.Spec o) -> (
      let g = Core.Prng.create a.Artifact.seed in
      match o.Oracle.generate g ~size:a.Artifact.size with
      | exception e -> `Failed ("generator raised: " ^ Printexc.to_string e)
      | x -> (
          match safe_check o.Oracle.check x with
          | Ok () -> `Passed
          | Error r -> `Failed r))
