(* Unit tests for the connection multiplexer, driven over real sockets
   with raw clients (no Server.Client conveniences — these tests care
   about wire-level behavior: blocked writes, abrupt closes, fd
   exhaustion, idle eviction). *)

module Mux = Server.Mux
module Http = Server.Http

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let with_mux cfg_mod f =
  ignore_sigpipe ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop = Atomic.make false in
  let cfg =
    cfg_mod
      {
        Mux.default_config with
        Mux.io_threads = 2;
        draining = (fun () -> Atomic.get stop);
        handler =
          (fun req ->
            { Http.status = 200; headers = []; body = "{\"echo\":\"" ^ req.Http.path ^ "\"}" });
      }
  in
  let mux = Mux.create cfg in
  let th = Thread.create (fun () -> Mux.run mux ~listen_fd) () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Mux.wake mux;
      Thread.join th;
      try Unix.close listen_fd with Unix.Unix_error _ -> ())
    (fun () -> f mux port)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* Read until EOF (bounded by a deadline so a hung test fails, not
   wedges). *)
let recv_all ?(deadline = 10.0) fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 65536 in
  let t0 = Unix.gettimeofday () in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let rec go () =
    if Unix.gettimeofday () -. t0 > deadline then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
  in
  go ();
  Buffer.contents buf

let rec wait_for ?(deadline = 5.0) pred =
  if pred () then true
  else if deadline <= 0. then false
  else begin
    Thread.delay 0.05;
    wait_for ~deadline:(deadline -. 0.05) pred
  end

let simple_get = "GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n"

(* A response too large for the socket buffer of a client that is not
   reading: the worker's first write blocks, the connection moves to the
   Writing state, and the poll loop must finish the send once the client
   drains — no bytes lost, no wedged connection. *)
let test_write_blocked_completes () =
  let big = String.make (16 * 1024 * 1024) 'x' in
  with_mux
    (fun cfg ->
      { cfg with Mux.handler = (fun _ -> { Http.status = 200; headers = []; body = big }) })
    (fun mux port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send fd simple_get;
          (* Give the worker time to hit the blocked write and hand the
             connection back to the poll loop before we start draining. *)
          ignore
            (wait_for (fun () -> (Mux.stats mux).Mux.s_busy = 0));
          let got = recv_all ~deadline:30.0 fd in
          let expected = String.length (Http.response_bytes ~keep_alive:false { Http.status = 200; headers = []; body = big }) in
          Alcotest.(check int) "full response arrives" expected
            (String.length got);
          Alcotest.(check bool) "status line intact" true
            (String.length got > 15 && String.sub got 0 15 = "HTTP/1.1 200 OK")))

(* Abruptly closing a parked keep-alive connection must reap it from the
   mux — no leaked entry, no stuck poll slot. *)
let test_close_while_parked () =
  with_mux Fun.id (fun mux port ->
      let fd = connect port in
      send fd "GET /one HTTP/1.1\r\n\r\n";
      (* Complete one request so the connection is parked (keep-alive). *)
      let ok =
        wait_for (fun () ->
            let s = Mux.stats mux in
            s.Mux.s_conns = 1 && s.Mux.s_parked = 1)
      in
      Alcotest.(check bool) "connection parks after response" true ok;
      Unix.close fd;
      Alcotest.(check bool) "mux reaps the closed connection" true
        (wait_for (fun () -> (Mux.stats mux).Mux.s_conns = 0)))

(* Descriptor exhaustion: an accept raising EMFILE must not spin or hang
   the pending client — the mux surrenders its reserve fd, accepts into
   the freed slot, and sheds with an honest 503. *)
let test_emfile_sheds_503 () =
  (* One failure, then success — modeling a real EMFILE, which clears as
     soon as the mux closes its reserve fd to make room for the accept. *)
  let failures = Atomic.make 1 in
  let accept_fn fd =
    if Atomic.fetch_and_add failures (-1) > 0 then
      raise (Unix.Unix_error (Unix.EMFILE, "accept", ""))
    else Unix.accept fd
  in
  with_mux
    (fun cfg -> { cfg with Mux.accept_fn })
    (fun mux port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let got = recv_all fd in
          Alcotest.(check bool) "shed with 503" true
            (String.length got > 12 && String.sub got 0 12 = "HTTP/1.1 503");
          let s = Mux.stats mux in
          Alcotest.(check bool) "emfile counted" true (s.Mux.s_emfile >= 1);
          Alcotest.(check bool) "shed counted" true (s.Mux.s_shed >= 1);
          Alcotest.(check int) "no connection leaked" 0 s.Mux.s_conns;
          (* The reserve was re-armed: once descriptors are back, the
             next connection is served normally. *)
          let fd2 = connect port in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd2 with Unix.Unix_error _ -> ())
            (fun () ->
              send fd2 simple_get;
              let got2 = recv_all fd2 in
              Alcotest.(check bool) "service restored" true
                (String.length got2 > 15
                && String.sub got2 0 15 = "HTTP/1.1 200 OK"))))

(* Connections beyond max_conns are refused with 503 at accept time. *)
let test_max_conns_sheds () =
  with_mux
    (fun cfg -> { cfg with Mux.max_conns = 2 })
    (fun mux port ->
      let a = connect port and b = connect port in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ a; b ])
        (fun () ->
          Alcotest.(check bool) "two admitted" true
            (wait_for (fun () -> (Mux.stats mux).Mux.s_conns = 2));
          let c = connect port in
          let got = recv_all c in
          (try Unix.close c with Unix.Unix_error _ -> ());
          Alcotest.(check bool) "third is shed with 503" true
            (String.length got > 12 && String.sub got 0 12 = "HTTP/1.1 503")))

(* Parked connections beyond max_idle_conns are evicted oldest-first:
   the evicted client sees a clean EOF, the survivors keep working. *)
let test_idle_eviction () =
  with_mux
    (fun cfg -> { cfg with Mux.max_idle_conns = 2 })
    (fun mux port ->
      let oldest = connect port in
      send oldest "GET /old HTTP/1.1\r\n\r\n";
      Alcotest.(check bool) "first parks" true
        (wait_for (fun () -> (Mux.stats mux).Mux.s_parked = 1));
      Thread.delay 0.1;
      let rest = List.init 3 (fun _ -> connect port) in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            (oldest :: rest))
        (fun () ->
          Alcotest.(check bool) "idle cap enforced" true
            (wait_for (fun () ->
                 let s = Mux.stats mux in
                 s.Mux.s_idle_closed >= 2 && s.Mux.s_parked <= 2));
          (* The oldest connection was the first evicted: its pending
             response bytes were already sent, so all that remains is
             EOF. *)
          let got = recv_all ~deadline:3.0 oldest in
          Alcotest.(check bool) "evicted oldest got its response first" true
            (String.length got > 15
            && String.sub got 0 15 = "HTTP/1.1 200 OK")))

let () =
  Alcotest.run "mux"
    [
      ( "mux",
        [
          Alcotest.test_case "write-blocked response completes" `Quick
            test_write_blocked_completes;
          Alcotest.test_case "close while parked is reaped" `Quick
            test_close_while_parked;
          Alcotest.test_case "EMFILE sheds 503 and recovers" `Quick
            test_emfile_sheds_503;
          Alcotest.test_case "max_conns sheds 503" `Quick
            test_max_conns_sheds;
          Alcotest.test_case "idle eviction beyond cap" `Quick
            test_idle_eviction;
        ] );
    ]
