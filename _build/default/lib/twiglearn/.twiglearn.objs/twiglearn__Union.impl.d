lib/twiglearn/union.ml: Core List Positive Twig Xmltree
