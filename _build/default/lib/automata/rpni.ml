module SM = Map.Make (String)

(* Prefix-tree acceptor in mutable form: state 0 is the root; transitions in
   lexicographic-BFS numbering, the canonical RPNI order. *)
type pta = {
  mutable size : int;
  succ : (string * int) list array ref;  (** outgoing edges per state *)
  final : bool array ref;
}

let build_pta pos =
  let capacity = max 1 (List.fold_left (fun a w -> a + List.length w + 1) 1 pos) in
  let t =
    { size = 1; succ = ref (Array.make capacity []); final = ref (Array.make capacity false) }
  in
  let find_edge s sym = List.assoc_opt sym !(t.succ).(s) in
  let add_state () =
    let id = t.size in
    t.size <- t.size + 1;
    id
  in
  let insert word =
    let final_state =
      List.fold_left
        (fun s sym ->
          match find_edge s sym with
          | Some d -> d
          | None ->
              let d = add_state () in
              !(t.succ).(s) <- !(t.succ).(s) @ [ (sym, d) ];
              d)
        0 word
    in
    !(t.final).(final_state) <- true
  in
  (* Sorting the positives gives the canonical state numbering. *)
  List.iter insert (List.sort compare pos);
  t

(* A merge workspace: union-find over PTA states plus per-class edges. *)
type workspace = {
  parent : int array;
  edges : (string * int) list array;  (** valid at class representatives *)
  finals : bool array;
}

let clone ws =
  {
    parent = Array.copy ws.parent;
    edges = Array.copy ws.edges;
    finals = Array.copy ws.finals;
  }

let rec find ws s = if ws.parent.(s) = s then s else find ws ws.parent.(s)

(* Merge the classes of [a] and [b], folding successor conflicts
   (determinization). *)
let rec merge ws a b =
  let a = find ws a and b = find ws b in
  if a = b then ()
  else begin
    ws.parent.(b) <- a;
    ws.finals.(a) <- ws.finals.(a) || ws.finals.(b);
    let b_edges = ws.edges.(b) in
    ws.edges.(b) <- [];
    List.iter
      (fun (sym, dst) ->
        match List.assoc_opt sym ws.edges.(a) with
        | None -> ws.edges.(a) <- ws.edges.(a) @ [ (sym, dst) ]
        | Some dst' -> merge ws dst' dst)
      b_edges
  end

let run ws word =
  let rec go s = function
    | [] -> Some (find ws s)
    | sym :: rest -> (
        match List.assoc_opt sym ws.edges.(find ws s) with
        | None -> None
        | Some d -> go d rest)
  in
  go 0 word

let accepts ws word =
  match run ws word with None -> false | Some s -> ws.finals.(s)

let rejects_all ws neg = List.for_all (fun w -> not (accepts ws w)) neg

let to_dfa ws ~alphabet =
  let n = Array.length ws.parent in
  (* Enumerate live classes reachable from the root. *)
  let remap = Hashtbl.create 16 in
  let counter = ref 0 in
  let rec explore s =
    let s = find ws s in
    if not (Hashtbl.mem remap s) then begin
      Hashtbl.add remap s !counter;
      incr counter;
      List.iter (fun (_, d) -> explore d) ws.edges.(s)
    end
  in
  explore 0;
  ignore n;
  let trans = ref [] and finals = ref [] in
  Hashtbl.iter
    (fun cls id ->
      if ws.finals.(cls) then finals := id :: !finals;
      List.iter
        (fun (sym, d) ->
          trans := (id, sym, Hashtbl.find remap (find ws d)) :: !trans)
        ws.edges.(cls))
    remap;
  Dfa.make ~alphabet ~size:!counter ~start:(Hashtbl.find remap (find ws 0))
    ~finals:!finals ~trans:!trans

let alphabet_of words =
  let module S = Set.Make (String) in
  List.fold_left
    (fun acc w -> List.fold_left (fun acc s -> S.add s acc) acc w)
    S.empty words
  |> S.elements

let pta ~pos ~alphabet =
  let t = build_pta pos in
  let ws =
    {
      parent = Array.init t.size Fun.id;
      edges = Array.init t.size (fun s -> !(t.succ).(s));
      finals = Array.sub !(t.final) 0 t.size;
    }
  in
  Dfa.minimize (to_dfa ws ~alphabet)

let learn ~pos ~neg =
  let contradictory = List.exists (fun w -> List.mem w pos) neg in
  if contradictory then None
  else begin
    let alphabet = alphabet_of (pos @ neg) in
    let t = build_pta pos in
    let ws =
      {
        parent = Array.init t.size Fun.id;
        edges = Array.init t.size (fun s -> !(t.succ).(s));
        finals = Array.sub !(t.final) 0 t.size;
      }
    in
    (* Red-blue loop in canonical numeric order: PTA numbering is the
       lexicographic-BFS order RPNI requires. *)
    let red = ref [ 0 ] in
    let blue_of () =
      List.concat_map (fun r -> List.map snd ws.edges.(find ws r)) !red
      |> List.map (fun s -> find ws s)
      |> List.filter (fun s -> not (List.mem s !red))
      |> List.sort_uniq compare
    in
    let rec loop () =
      match blue_of () with
      | [] -> ()
      | q :: _ ->
          let try_merge r =
            let attempt = clone ws in
            merge attempt r q;
            if rejects_all attempt neg then Some attempt else None
          in
          let rec first_ok = function
            | [] -> None
            | r :: rest -> (
                match try_merge (find ws r) with
                | Some a -> Some a
                | None -> first_ok rest)
          in
          (match first_ok (List.sort compare !red) with
          | Some merged ->
              Array.blit merged.parent 0 ws.parent 0 (Array.length ws.parent);
              Array.blit merged.edges 0 ws.edges 0 (Array.length ws.edges);
              Array.blit merged.finals 0 ws.finals 0 (Array.length ws.finals)
          | None -> red := q :: !red);
          loop ()
    in
    loop ();
    if rejects_all ws neg then Some (Dfa.minimize (to_dfa ws ~alphabet))
    else None
  end
