lib/twig/lgg.ml: Array Contain List Query Stdlib String
