lib/twiglearn/schema_aware.ml: List Positive Twig Uschema Xmltree
