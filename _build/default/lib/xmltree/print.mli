(** Serialization of {!Tree.t} documents back to XML. *)

val to_xml : ?indent:int -> Tree.t -> string
(** Pretty-printed XML.  ["@name"] children are rendered as attributes and
    ["#text"] leaves as character data, inverting {!Parse.xml}.  [indent]
    (default 2) is the indentation width; [0] produces a single line. *)

val pp_xml : Format.formatter -> Tree.t -> unit
(** [to_xml ~indent:2] on a formatter. *)
