lib/twiglearn/positive.mli: Core Twig Xmltree
