lib/pathlearn/pairs.mli: Core Graphdb Words
