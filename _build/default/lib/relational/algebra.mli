(** Join-like operators — the relational queries the paper learns
    ("we plan to concentrate on simple operators, such as join-like
    operators": natural joins and semijoins, Section 3).

    An equi-join predicate is a set of attribute-index pairs [(i, j)]
    equating column [i] of the left relation with column [j] of the right
    one.  The natural join is the equi-join on all shared attribute
    names. *)

type predicate = (int * int) list

val natural_predicate : Relation.t -> Relation.t -> predicate
(** Pairs of positions of attributes sharing a name. *)

val satisfies : predicate -> Relation.tuple -> Relation.tuple -> bool

val join_pairs :
  Relation.t -> Relation.t -> predicate ->
  (Relation.tuple * Relation.tuple) list
(** All tuple pairs satisfying the predicate (the Cartesian product when the
    predicate is empty). *)

val equijoin : Relation.t -> Relation.t -> predicate -> Relation.t
(** Concatenated tuples; right-hand attributes are renamed
    ["<rel>.<attr>"] on clashes. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Equi-join on shared names, with shared columns emitted once. *)

val semijoin : Relation.t -> Relation.t -> predicate -> Relation.t
(** Left tuples having at least one right partner (R ⋉ S). *)

val natural_semijoin : Relation.t -> Relation.t -> Relation.t

val chain_join : Relation.t list -> predicate list -> Relation.t
(** [chain_join \[R₁; …; R_k\] \[θ₁; …; θ_{k-1}\]] evaluates the chain
    R₁ ⋈_{θ₁} R₂ ⋈_{θ₂} … ⋈ R_k, where θᵢ pairs attribute positions of Rᵢ
    with positions of Rᵢ₊₁.  Attribute clashes are renamed as in
    {!equijoin}.
    @raise Invalid_argument when the predicate count is not k-1 or k = 0. *)
