(* Tests for the relational substrate: relations, join-like operators,
   generators. *)

open Relational

let qcheck = QCheck_alcotest.to_alcotest

let tuple vs = Array.of_list (List.map Value.of_string vs)

let r =
  Relation.make ~name:"R" ~attrs:[ "city"; "country" ]
    [
      tuple [ "Lille"; "France" ];
      tuple [ "Kyoto"; "Japan" ];
      tuple [ "Paris"; "France" ];
    ]

let s =
  Relation.make ~name:"S" ~attrs:[ "country"; "continent" ]
    [
      tuple [ "France"; "Europe" ];
      tuple [ "Japan"; "Asia" ];
      tuple [ "Kenya"; "Africa" ];
    ]

(* ------------------------------------------------------------------ *)
(* Values and relations                                                *)
(* ------------------------------------------------------------------ *)

let test_value_parse () =
  Alcotest.(check bool) "int" true (Value.of_string "42" = Value.Int 42);
  Alcotest.(check bool) "string" true (Value.of_string "x42" = Value.Str "x42");
  Alcotest.(check bool) "int/string distinct" false
    (Value.equal (Value.Int 1) (Value.Str "1"));
  Alcotest.(check string) "to_string" "42" (Value.to_string (Value.Int 42))

let test_relation_dedup () =
  let rel =
    Relation.make ~name:"T" ~attrs:[ "a" ]
      [ tuple [ "1" ]; tuple [ "1" ]; tuple [ "2" ] ]
  in
  Alcotest.(check int) "duplicates removed" 2 (Relation.cardinal rel)

let test_relation_arity_check () =
  match Relation.make ~name:"T" ~attrs:[ "a"; "b" ] [ tuple [ "1" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

let test_relation_duplicate_attrs () =
  match Relation.make ~name:"T" ~attrs:[ "a"; "a" ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate attributes must be rejected"

let test_project () =
  let p = Relation.project r [ "country" ] in
  Alcotest.(check int) "dedup after projection" 2 (Relation.cardinal p);
  Alcotest.(check bool) "contains France" true
    (Relation.mem (tuple [ "France" ]) p)

let test_union () =
  let r2 =
    Relation.make ~name:"R2" ~attrs:[ "city"; "country" ]
      [ tuple [ "Lille"; "France" ]; tuple [ "Nairobi"; "Kenya" ] ]
  in
  Alcotest.(check int) "union dedups" 4
    (Relation.cardinal (Relation.union r r2))

let test_attr_index () =
  Alcotest.(check (option int)) "country at 1" (Some 1)
    (Relation.attr_index r "country");
  Alcotest.(check (option int)) "unknown" None (Relation.attr_index r "zip")

(* ------------------------------------------------------------------ *)
(* Algebra                                                             *)
(* ------------------------------------------------------------------ *)

let test_natural_predicate () =
  Alcotest.(check (list (pair int int))) "shared country column" [ (1, 0) ]
    (Algebra.natural_predicate r s)

let test_natural_join () =
  let j = Algebra.natural_join r s in
  Alcotest.(check int) "three matches" 3 (Relation.cardinal j);
  Alcotest.(check (list string)) "attributes"
    [ "city"; "country"; "continent" ]
    (Array.to_list (Relation.attrs j));
  Alcotest.(check bool) "Lille row" true
    (Relation.mem (tuple [ "Lille"; "France"; "Europe" ]) j)

let test_equijoin_empty_predicate_is_product () =
  let j = Algebra.equijoin r s [] in
  Alcotest.(check int) "cartesian product" 9 (Relation.cardinal j)

let test_equijoin_renames_clashes () =
  let j = Algebra.equijoin r r [ (1, 1) ] in
  Alcotest.(check (list string)) "clash renamed"
    [ "city"; "country"; "R.city"; "R.country" ]
    (Array.to_list (Relation.attrs j))

let test_semijoin () =
  let sj = Algebra.natural_semijoin r s in
  Alcotest.(check int) "all three cities match" 3 (Relation.cardinal sj);
  let s' =
    Relation.make ~name:"S2" ~attrs:[ "country"; "continent" ]
      [ tuple [ "Japan"; "Asia" ] ]
  in
  let sj2 = Algebra.natural_semijoin r s' in
  Alcotest.(check int) "only Kyoto" 1 (Relation.cardinal sj2);
  Alcotest.(check bool) "Kyoto survives" true
    (Relation.mem (tuple [ "Kyoto"; "Japan" ]) sj2)

let test_semijoin_keeps_left_attrs () =
  let sj = Algebra.natural_semijoin r s in
  Alcotest.(check (list string)) "left schema"
    [ "city"; "country" ]
    (Array.to_list (Relation.attrs sj))

let test_chain_join () =
  let r1 =
    Relation.make ~name:"R1" ~attrs:[ "a"; "b" ]
      [ tuple [ "1"; "2" ]; tuple [ "3"; "4" ] ]
  in
  let r2 =
    Relation.make ~name:"R2" ~attrs:[ "c"; "d" ]
      [ tuple [ "2"; "5" ]; tuple [ "4"; "6" ] ]
  in
  let r3 =
    Relation.make ~name:"R3" ~attrs:[ "e" ] [ tuple [ "5" ]; tuple [ "9" ] ]
  in
  (* R1.b = R2.c, then R2.d = R3.e (link predicates use relation-local
     positions; chain_join shifts them into the accumulated layout). *)
  let j = Algebra.chain_join [ r1; r2; r3 ] [ [ (1, 0) ]; [ (1, 0) ] ] in
  Alcotest.(check int) "single surviving chain" 1 (Relation.cardinal j);
  Alcotest.(check bool) "the 1-2-5 chain" true
    (Relation.mem (tuple [ "1"; "2"; "2"; "5"; "5" ]) j);
  (* Degenerate chains. *)
  (match Algebra.chain_join [] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty chain rejected");
  match Algebra.chain_join [ r1 ] [ [ (0, 0) ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "predicate count mismatch rejected"

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_parse () =
  let rel = Csv.parse ~name:"t" "a,b\n1,x\n2,\"y,z\"\n" in
  Alcotest.(check (list string)) "attrs" [ "a"; "b" ]
    (Array.to_list (Relation.attrs rel));
  Alcotest.(check int) "rows" 2 (Relation.cardinal rel);
  Alcotest.(check bool) "quoted separator" true
    (Relation.mem [| Value.Int 2; Value.Str "y,z" |] rel);
  Alcotest.(check bool) "ints typed" true
    (Relation.mem [| Value.Int 1; Value.Str "x" |] rel)

let test_csv_quote_escape () =
  let rel = Csv.parse ~name:"t" "a\n\"he said \"\"hi\"\"\"\n" in
  Alcotest.(check bool) "inner quotes" true
    (Relation.mem [| Value.Str {|he said "hi"|} |] rel)

let test_csv_errors () =
  (match Csv.parse ~name:"t" "" with
  | exception Csv.Syntax_error _ -> ()
  | _ -> Alcotest.fail "empty input rejected");
  (match Csv.parse ~name:"t" "a,b\n1\n" with
  | exception Csv.Syntax_error _ -> ()
  | _ -> Alcotest.fail "ragged row rejected");
  match Csv.parse ~name:"t" "a\n\"unterminated\n" with
  | exception Csv.Syntax_error _ -> ()
  | _ -> Alcotest.fail "unbalanced quote rejected"

let test_csv_roundtrip () =
  let rel =
    Relation.make ~name:"t" ~attrs:[ "name"; "note" ]
      [
        [| Value.Str "a,b"; Value.Str {|say "hi"|} |];
        [| Value.Int 3; Value.Str "plain" |];
      ]
  in
  let back = Csv.parse ~name:"t" (Csv.to_string rel) in
  Alcotest.(check bool) "roundtrip" true (Relation.equal_contents rel back)

let prop_semijoin_subset =
  QCheck.Test.make ~name:"semijoin selects a subset of the left" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let inst = Generator.pair_instance ~rng () in
      let sj = Algebra.semijoin inst.left inst.right inst.planted in
      List.for_all (fun t -> Relation.mem t inst.left) (Relation.tuples sj))

let prop_join_pairs_satisfy =
  QCheck.Test.make ~name:"join pairs satisfy the predicate" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let inst = Generator.pair_instance ~rng () in
      List.for_all
        (fun (rt, st) -> Algebra.satisfies inst.planted rt st)
        (Algebra.join_pairs inst.left inst.right inst.planted))

let prop_planted_has_witnesses =
  QCheck.Test.make ~name:"generator plants join witnesses" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let inst = Generator.pair_instance ~rng () in
      Algebra.join_pairs inst.left inst.right inst.planted <> [])

let () =
  Alcotest.run "relational"
    [
      ( "relation",
        [
          Alcotest.test_case "value parse" `Quick test_value_parse;
          Alcotest.test_case "dedup" `Quick test_relation_dedup;
          Alcotest.test_case "arity check" `Quick test_relation_arity_check;
          Alcotest.test_case "duplicate attrs" `Quick test_relation_duplicate_attrs;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "attr index" `Quick test_attr_index;
        ] );
      ( "csv",
        [
          Alcotest.test_case "parse" `Quick test_csv_parse;
          Alcotest.test_case "quote escape" `Quick test_csv_quote_escape;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "natural predicate" `Quick test_natural_predicate;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "empty predicate product" `Quick test_equijoin_empty_predicate_is_product;
          Alcotest.test_case "clash renaming" `Quick test_equijoin_renames_clashes;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
          Alcotest.test_case "semijoin schema" `Quick test_semijoin_keeps_left_attrs;
          Alcotest.test_case "chain join" `Quick test_chain_join;
          qcheck prop_semijoin_subset;
          qcheck prop_join_pairs_satisfy;
          qcheck prop_planted_has_witnesses;
        ] );
    ]
