(** A narrow file-I/O seam under {!Journal} and the session registry.

    {!real} passes straight through to [Unix].  {!faulty} injects, with
    seeded probabilities from a {!Flaky.disk} plan, the failure modes real
    disks exhibit: ENOSPC, EIO, short writes, fsyncs that acknowledge
    without persisting, and torn multi-byte writes at simulated crash time.

    The faulty backend operates on real files and tracks written-vs-durable
    byte counts per path; {!crash} truncates every file back to its durable
    prefix (or, with probability [torn], a fuzzed strict prefix of the lost
    tail).  Write-side operations raise [Unix.Unix_error] exactly as the
    passthrough would; read-side operations are always faithful so recovery
    can trust what it reads.  All injected faults are logged for the chaos
    gates ("every quarantine traces to an injected fault"). *)

type t

type fh
(** An open write handle (append-only; journals never seek backwards
    except to truncate a torn tail). *)

type fault_kind =
  | Enospc
  | Eio
  | Short_write of int  (** bytes that made it before the error *)
  | Lying_fsync
  | Torn of int  (** bytes of unfsynced tail kept by the crash *)

type fault = { f_path : string; f_op : string; f_kind : fault_kind }

val fault_to_string : fault -> string

val real : t
(** Passthrough to [Unix]; zero overhead, injects nothing. *)

val faulty : ?seed:int -> Flaky.disk -> t
(** A fault-injecting backend drawing from [Prng.create seed].
    Thread-safe: registry pools may hit it from several domains. *)

val of_plan : Flaky.plan -> t
(** The disk half of a {!Flaky.plan}; the backend's stream is derived from
    the plan's seed but decorrelated from the oracle stream. *)

val is_faulty : t -> bool

(** {2 Write side — faults injected here} *)

val openf : ?trunc:bool -> t -> string -> fh
(** Open (creating if needed, truncating when [trunc]) for appending.
    Under a scripted disk-full condition, creating a {e new} file raises
    [ENOSPC]. *)

val append : t -> fh -> string -> unit
(** Append all bytes.  May raise [Unix.Unix_error (ENOSPC|EIO, _, _)];
    on a short write a strict prefix really lands in the file before the
    error is raised — recovery sees the torn bytes. *)

val fsync : t -> fh -> unit
(** Really fsyncs; with probability [lying_fsync] the durable watermark is
    not advanced, so a later {!crash} drops bytes the caller believed
    safe. *)

val ftruncate : t -> fh -> int -> unit
val close : t -> fh -> unit

val link : t -> string -> string -> unit
(** [link src dst]: atomic lock-file creation.  Raises [ENOSPC] when the
    disk is scripted full (a new directory entry needs space). *)

val rename : t -> string -> string -> unit
(** Atomic replace — the compaction and quarantine commit point. *)

val unlink : t -> string -> unit
val mkdir : t -> string -> unit

(** {2 Read side — always faithful} *)

val exists : t -> string -> bool
val size : t -> string -> int
val readdir : t -> string -> string array
val read_file : t -> string -> string
val pread : t -> string -> off:int -> len:int -> string

(** {2 Fault control} *)

val set_full : t -> bool -> unit
(** Script a disk-full episode: every allocation (append, new file, link)
    fails with [ENOSPC] until cleared.  Drives the daemon's degraded
    read-only mode and its self-heal probe in tests. *)

val set_stall : t -> float -> unit
(** Script a slow disk: every subsequent fsync sleeps this many seconds
    (0. clears).  Each stalled fsync leaves a [vfs.stall] event in the
    flight recorder, so a dragging request is findable end to end.  No-op
    on {!real}. *)

val crash : t -> unit
(** Simulate powerloss: truncate every tracked file to its durable prefix
    (plus, with probability [torn], a fuzzed strict prefix of the lost
    tail).  Open handles become stale; reopen via {!openf} after. *)

val faults : t -> fault list
(** Injected faults, oldest first. *)

val fault_count : t -> int
