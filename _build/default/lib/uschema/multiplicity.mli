(** Multiplicities of the simple schemas for unordered XML (paper, Section 2;
    Boneva, Ciucanu & Staworko).  A multiplicity constrains how many children
    with a given label a node may have; its denotation is an integer interval
    whose endpoints lie in [{0, 1, ∞}] — the property underlying the
    containment decision procedure of {!Containment}. *)

type t =
  | One  (** exactly one: [1,1] *)
  | Opt  (** zero or one ([?]): [0,1] *)
  | Plus  (** one or more ([+]): [1,∞) *)
  | Star  (** zero or more ([*]): [0,∞) *)

val interval : t -> int * int option
(** [(lo, hi)] with [hi = None] for unbounded. *)

val satisfies : t -> int -> bool

val nullable : t -> bool
(** Whether count 0 is allowed. *)

val leq : t -> t -> bool
(** Interval inclusion: every count allowed by the first is allowed by the
    second. *)

val of_counts : lo:int -> hi:int -> t
(** The least multiplicity covering all counts in [\[lo, hi\]], for
    [0 <= lo <= hi] and [lo + hi > 0].  Counts above 1 are abstracted to
    unbounded. *)

val pp : Format.formatter -> t -> unit
(** ["" | "?" | "+" | "*"] — the suffix notation of the paper. *)

val parse_suffix : char -> t option
