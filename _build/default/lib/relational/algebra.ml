type predicate = (int * int) list

let natural_predicate r s =
  Array.to_list (Relation.attrs r)
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (fun (i, a) ->
         match Relation.attr_index s a with
         | Some j -> Some (i, j)
         | None -> None)

let satisfies predicate rt st =
  List.for_all (fun (i, j) -> Value.equal rt.(i) st.(j)) predicate

let join_pairs r s predicate =
  List.concat_map
    (fun rt ->
      List.filter_map
        (fun st -> if satisfies predicate rt st then Some (rt, st) else None)
        (Relation.tuples s))
    (Relation.tuples r)

let disambiguate left_attrs s =
  let module SS = Set.Make (String) in
  let taken = SS.of_list left_attrs in
  Array.to_list (Relation.attrs s)
  |> List.map (fun a ->
         if SS.mem a taken then Relation.name s ^ "." ^ a else a)

let equijoin r s predicate =
  let left_attrs = Array.to_list (Relation.attrs r) in
  let attrs = left_attrs @ disambiguate left_attrs s in
  let tuples =
    List.map (fun (rt, st) -> Array.append rt st) (join_pairs r s predicate)
  in
  Relation.make
    ~name:(Relation.name r ^ "_join_" ^ Relation.name s)
    ~attrs tuples

let natural_join r s =
  let predicate = natural_predicate r s in
  let shared_right = List.map snd predicate in
  let left_attrs = Array.to_list (Relation.attrs r) in
  let right_attrs =
    Array.to_list (Relation.attrs s)
    |> List.mapi (fun j a -> (j, a))
    |> List.filter (fun (j, _) -> not (List.mem j shared_right))
  in
  let attrs = left_attrs @ List.map snd right_attrs in
  let tuples =
    List.map
      (fun (rt, st) ->
        Array.append rt
          (Array.of_list (List.map (fun (j, _) -> st.(j)) right_attrs)))
      (join_pairs r s predicate)
  in
  Relation.make
    ~name:(Relation.name r ^ "_" ^ Relation.name s)
    ~attrs tuples

let semijoin r s predicate =
  Relation.select r (fun rt ->
      List.exists (fun st -> satisfies predicate rt st) (Relation.tuples s))

let natural_semijoin r s = semijoin r s (natural_predicate r s)

let chain_join relations predicates =
  match relations with
  | [] -> invalid_arg "Algebra.chain_join: no relations"
  | first :: rest ->
      if List.length predicates <> List.length rest then
        invalid_arg "Algebra.chain_join: need one predicate per link";
      (* Accumulated columns keep the left-to-right layout, so a link
         predicate shifts its left positions by the width of everything
         already joined before Rᵢ. *)
      let acc, _ =
        List.fold_left2
          (fun (acc, offset) right predicate ->
            let shifted = List.map (fun (i, j) -> (offset + i, j)) predicate in
            (* The next link's left relation starts right after the columns
               accumulated so far. *)
            (equijoin acc right shifted, Relation.arity acc))
          (first, 0) rest predicates
      in
      acc
