(** Agreement signatures: the combinatorial core of join learning.

    Fix two relations with arities [m] and [n].  A join predicate is a set
    of attribute pairs, encoded as a bitmask over the [m·n] pairs; the
    {e signature} of a tuple pair is the set of attribute pairs on which the
    tuples agree.  A predicate θ selects a tuple pair iff θ ⊆ sig — so the
    candidate predicates consistent with labeled pairs form a lattice of
    bitmasks, and learning is lattice navigation. *)

type space
(** The pair universe of a fixed relation pair. *)

type mask = int
(** Bitmask over attribute pairs; bit [k] set iff pair [k] belongs. *)

val space : left_arity:int -> right_arity:int -> space
(** @raise Invalid_argument when [m·n] exceeds the word size (62). *)

val pairs : space -> (int * int) array
(** Pair [k] is [pairs.(k)]. *)

val dimension : space -> int
val full : space -> mask
(** All pairs. *)

val of_predicate : space -> Relational.Algebra.predicate -> mask
val to_predicate : space -> mask -> Relational.Algebra.predicate

val signature :
  space -> Relational.Relation.tuple -> Relational.Relation.tuple -> mask
(** Set of pairs on which the tuples agree. *)

val subset : mask -> mask -> bool
val inter : mask -> mask -> mask
val popcount : mask -> int
val mem : mask -> int -> bool
val pp : space -> Format.formatter -> mask -> unit
(** e.g. [{a0=b2, a3=b3}] with the canonical attribute names. *)
