module Monotonic = Core.Monotonic

external poll_arrays : int array -> int array -> int array -> int -> int
  = "learnq_poll"

(* Unix file descriptors are ints on every platform this server targets. *)
external fd_int : Unix.file_descr -> int = "%identity"

type config = {
  io_threads : int;
  max_conns : int;
  max_idle_conns : int;
  request_deadline : float;
  drain_grace : float;
  max_head : int;
  max_body : int;
  handler : Http.request -> Http.response;
  keep_alive : Http.request -> Http.response -> bool;
  draining : unit -> bool;
  tick : unit -> unit;
  accept_fn : Unix.file_descr -> Unix.file_descr * Unix.sockaddr;
}

let default_config =
  {
    io_threads = 4;
    max_conns = 1024;
    max_idle_conns = 1024;
    request_deadline = 30.0;
    drain_grace = 5.0;
    max_head = 16 * 1024;
    max_body = 1024 * 1024;
    handler = (fun _ -> { Http.status = 404; headers = []; body = "{}" });
    keep_alive =
      (fun req _ -> Http.header "connection" req <> Some "close");
    draining = (fun () -> false);
    tick = ignore;
    accept_fn = (fun fd -> Unix.accept fd);
  }

type wstate = {
  w_data : string;
  mutable w_off : int;
  w_keep_alive : bool;
}

(* Who owns a connection's socket:
   - [Reading]: the mux polls it for readability and feeds the parser;
   - [Running]: a worker thread owns it (not polled) while the handler and
     the first write attempt run;
   - [Writing]: the write blocked; the mux polls for writability;
   - [Closing]: a worker asked for the close; the mux performs it (sockets
     are only ever closed on the mux thread, so a descriptor can never be
     recycled while it still sits in a poll set). *)
type cstate = Reading | Running | Writing of wstate | Closing

type conn = {
  c_fd : Unix.file_descr;
  c_inc : Http.incremental;
  mutable c_state : cstate;
  mutable c_last : float;  (** monotonic, last socket activity *)
  mutable c_req_start : float;  (** first byte of the pending request; 0 = idle *)
}

type t = {
  cfg : config;
  mu : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  work : (conn * Http.request) Queue.t;
  work_cv : Condition.t;
  mutable stop_workers : bool;
  mutable reserve : Unix.file_descr option;
      (** spare fd surrendered under EMFILE so the shed 503 can be sent *)
  mutable drain_start : float;  (** < 0 until draining is first observed *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  busy : int Atomic.t;
  accepted : int Atomic.t;
  shed : int Atomic.t;  (** 503 "too many connections" *)
  emfile : int Atomic.t;  (** accept hit fd exhaustion *)
  timeouts : int Atomic.t;  (** 408 slow-request deadlines *)
  idle_closed : int Atomic.t;  (** parked conns evicted past max_idle_conns *)
}

let create cfg =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg;
    mu = Mutex.create ();
    conns = Hashtbl.create 256;
    work = Queue.create ();
    work_cv = Condition.create ();
    stop_workers = false;
    reserve = None;
    drain_start = -1.0;
    wake_r;
    wake_w;
    busy = Atomic.make 0;
    accepted = Atomic.make 0;
    shed = Atomic.make 0;
    emfile = Atomic.make 0;
    timeouts = Atomic.make 0;
    idle_closed = Atomic.make 0;
  }

(* Safe from any thread, including a signal handler: one byte down a
   non-blocking pipe (EAGAIN = the mux is already due to wake). *)
let wake t =
  try ignore (Unix.write_substring t.wake_w "w" 0 1)
  with Unix.Unix_error _ -> ()

type stats = {
  s_conns : int;
  s_parked : int;  (** idle keep-alive connections costing zero threads *)
  s_busy : int;  (** workers currently inside the handler *)
  s_threads : int;  (** mux loop + workers — the whole I/O thread budget *)
  s_accepted : int;
  s_shed : int;
  s_emfile : int;
  s_timeouts : int;
  s_idle_closed : int;
}

let stats t =
  Mutex.lock t.mu;
  let parked =
    Hashtbl.fold
      (fun _ c n ->
        match c.c_state with
        | Reading when not (Http.mid_request c.c_inc) -> n + 1
        | _ -> n)
      t.conns 0
  in
  let conns = Hashtbl.length t.conns in
  Mutex.unlock t.mu;
  {
    s_conns = conns;
    s_parked = parked;
    s_busy = Atomic.get t.busy;
    s_threads = t.cfg.io_threads + 1;
    s_accepted = Atomic.get t.accepted;
    s_shed = Atomic.get t.shed;
    s_emfile = Atomic.get t.emfile;
    s_timeouts = Atomic.get t.timeouts;
    s_idle_closed = Atomic.get t.idle_closed;
  }

(* ------------------------------------------------------------------ *)
(* Non-blocking writes                                                 *)
(* ------------------------------------------------------------------ *)

let rec try_write fd s off =
  if off >= String.length s then `Done
  else
    match Unix.write_substring fd s off (String.length s - off) with
    | k -> try_write fd s (off + k)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Blocked off
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_write fd s off
    | exception Unix.Unix_error (_, _, _) -> `Closed

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let internal_error exn =
  {
    Http.status = 500;
    headers = [];
    body =
      Printf.sprintf "{\"error\":%S}"
        ("internal error: " ^ Printexc.to_string exn);
  }

let worker t () =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.work && not t.stop_workers do
      Condition.wait t.work_cv t.mu
    done;
    if Queue.is_empty t.work then Mutex.unlock t.mu (* stop *)
    else begin
      let conn, req = Queue.pop t.work in
      Mutex.unlock t.mu;
      Atomic.incr t.busy;
      let resp =
        match t.cfg.handler req with
        | resp -> resp
        | exception exn -> internal_error exn
      in
      let ka = try t.cfg.keep_alive req resp with _ -> false in
      let data = Http.response_bytes ~keep_alive:ka resp in
      (* First write attempt straight from the worker: the common case
         (small response, empty socket buffer) completes here and the
         connection re-parks without ever touching the poll loop. *)
      let outcome = try_write conn.c_fd data 0 in
      Mutex.lock t.mu;
      (match outcome with
      | `Done ->
          conn.c_last <- Monotonic.now ();
          conn.c_state <- (if ka then Reading else Closing)
      | `Blocked off ->
          conn.c_last <- Monotonic.now ();
          conn.c_state <- Writing { w_data = data; w_off = off; w_keep_alive = ka }
      | `Closed -> conn.c_state <- Closing);
      Mutex.unlock t.mu;
      Atomic.decr t.busy;
      wake t;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The readiness loop                                                  *)
(* ------------------------------------------------------------------ *)

let interest_read = 1
let interest_write = 2

type target = P_listen | P_wake | P_conn of conn

let close_conn t conn =
  Hashtbl.remove t.conns (fd_int conn.c_fd);
  try Unix.close conn.c_fd with Unix.Unix_error _ -> ()

let shed_503 t fd =
  Atomic.incr t.shed;
  let bytes =
    Http.response_bytes ~keep_alive:false
      {
        Http.status = 503;
        headers = [ ("Retry-After", "1") ];
        body = "{\"error\":\"too many connections\"}";
      }
  in
  ignore (try_write fd bytes 0);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Parse whatever the connection has buffered; at most one request may be
   outstanding per connection, so a completed parse hands off and stops. *)
let step_conn t conn =
  match Http.step conn.c_inc with
  | `More ->
      if Http.mid_request conn.c_inc && conn.c_req_start = 0.0 then
        conn.c_req_start <- Monotonic.now ()
  | `Request req ->
      conn.c_state <- Running;
      conn.c_req_start <- 0.0;
      Queue.push (conn, req) t.work;
      Condition.signal t.work_cv
  | `Error msg ->
      let resp =
        {
          Http.status = 400;
          headers = [];
          body = Printf.sprintf "{\"error\":%S}" ("malformed request: " ^ msg);
        }
      in
      conn.c_state <-
        Writing
          {
            w_data = Http.response_bytes ~keep_alive:false resp;
            w_off = 0;
            w_keep_alive = false;
          }

let read_conn t conn chunk =
  match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn t conn (* EOF, mid-request or not *)
  | n ->
      Http.feed_sub conn.c_inc chunk ~pos:0 ~len:n;
      conn.c_last <- Monotonic.now ();
      if conn.c_req_start = 0.0 then conn.c_req_start <- conn.c_last;
      step_conn t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_conn t conn

let write_conn t conn w =
  match try_write conn.c_fd w.w_data w.w_off with
  | `Done ->
      conn.c_last <- Monotonic.now ();
      if w.w_keep_alive then conn.c_state <- Reading
      else close_conn t conn
  | `Blocked off ->
      conn.c_last <- Monotonic.now ();
      w.w_off <- off
  | `Closed -> close_conn t conn

let open_reserve () =
  try Some (Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0)
  with Unix.Unix_error _ | Sys_error _ -> None

let rec accept_burst t listen_fd k =
  if k > 0 then
    match t.cfg.accept_fn listen_fd with
    | fd, _ ->
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        if Hashtbl.length t.conns >= t.cfg.max_conns then shed_503 t fd
        else begin
          Atomic.incr t.accepted;
          Hashtbl.replace t.conns (fd_int fd)
            {
              c_fd = fd;
              c_inc =
                Http.incremental ~max_head:t.cfg.max_head
                  ~max_body:t.cfg.max_body ();
              c_state = Reading;
              c_last = Monotonic.now ();
              c_req_start = 0.0;
            }
        end;
        accept_burst t listen_fd (k - 1)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        accept_burst t listen_fd k
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        (* Out of descriptors: surrender the reserve fd, accept the waiting
           connection into the freed slot, shed it with an honest 503, and
           re-arm the reserve.  Without this the pending connection would
           hang in the backlog while accept spins on EMFILE. *)
        Atomic.incr t.emfile;
        (match t.reserve with
        | None -> ()
        | Some rfd ->
            (try Unix.close rfd with Unix.Unix_error _ -> ());
            t.reserve <- None;
            (match t.cfg.accept_fn listen_fd with
            | fd, _ -> shed_503 t fd
            | exception Unix.Unix_error _ -> ());
            t.reserve <- open_reserve ())
    | exception Unix.Unix_error (_, _, _) -> ()

(* One sweep under the lock: execute worker-requested closes, re-parse
   pipelined leftovers, enforce the slow-request deadline (408), evict
   idle connections beyond the cap, and apply drain policy. *)
let sweep t =
  let now = Monotonic.now () in
  let draining = t.cfg.draining () in
  if draining && t.drain_start < 0.0 then t.drain_start <- now;
  let past_grace =
    draining && now -. t.drain_start > t.cfg.drain_grace
  in
  let to_close = ref [] in
  let to_timeout = ref [] in
  let idle = ref [] in
  Hashtbl.iter
    (fun _ conn ->
      match conn.c_state with
      | Closing -> to_close := conn :: !to_close
      | Running -> ()
      | Writing _ when past_grace -> to_close := conn :: !to_close
      | Writing _ ->
          if now -. conn.c_last > t.cfg.request_deadline then
            to_close := conn :: !to_close
      | Reading ->
          if Http.mid_request conn.c_inc then begin
            if conn.c_req_start = 0.0 then conn.c_req_start <- now;
            if past_grace then to_close := conn :: !to_close
            else if now -. conn.c_req_start > t.cfg.request_deadline then
              to_timeout := conn :: !to_timeout
            else step_conn t conn
          end
          else if draining then to_close := conn :: !to_close
          else idle := conn :: !idle)
    t.conns;
  List.iter (close_conn t) !to_close;
  List.iter
    (fun conn ->
      (* A client that trickles bytes slower than the deadline gets a 408
         and the socket back — without ever having cost a thread. *)
      Atomic.incr t.timeouts;
      let resp =
        {
          Http.status = 408;
          headers = [];
          body = "{\"error\":\"timed out mid request\"}";
        }
      in
      conn.c_state <-
        Writing
          {
            w_data = Http.response_bytes ~keep_alive:false resp;
            w_off = 0;
            w_keep_alive = false;
          })
    !to_timeout;
  let n_idle = List.length !idle in
  if n_idle > t.cfg.max_idle_conns then begin
    let by_age =
      List.sort (fun a b -> compare a.c_last b.c_last) !idle
    in
    let excess = n_idle - t.cfg.max_idle_conns in
    List.iteri
      (fun i conn ->
        if i < excess then begin
          Atomic.incr t.idle_closed;
          close_conn t conn
        end)
      by_age
  end

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let run t ~listen_fd =
  (try Unix.set_nonblock listen_fd with Unix.Unix_error _ -> ());
  t.reserve <- open_reserve ();
  let workers =
    List.init (max 1 t.cfg.io_threads) (fun _ -> Thread.create (worker t) ())
  in
  let chunk = Bytes.create 16384 in
  let fds = ref [||] and events = ref [||] and revents = ref [||] in
  let targets = ref [||] in
  let rec loop () =
    t.cfg.tick ();
    Mutex.lock t.mu;
    sweep t;
    let finished =
      t.cfg.draining ()
      && Hashtbl.length t.conns = 0
      && Queue.is_empty t.work
    in
    if finished then Mutex.unlock t.mu
    else begin
      (* Build the poll set: the wake pipe, the listener (unless draining
         — new connections are refused by not accepting them), and every
         parked or write-blocked connection. *)
      let n = 2 + Hashtbl.length t.conns in
      if Array.length !fds < n then begin
        fds := Array.make n (-1);
        events := Array.make n 0;
        revents := Array.make n 0;
        targets := Array.make n P_wake
      end;
      !fds.(0) <- fd_int t.wake_r;
      !events.(0) <- interest_read;
      !targets.(0) <- P_wake;
      let listening = not (t.cfg.draining ()) in
      !fds.(1) <- (if listening then fd_int listen_fd else fd_int t.wake_r);
      !events.(1) <- (if listening then interest_read else 0);
      !targets.(1) <- P_listen;
      let i = ref 2 in
      Hashtbl.iter
        (fun fdi conn ->
          let interest =
            match conn.c_state with
            | Reading -> interest_read
            | Writing _ -> interest_write
            | Running | Closing -> 0
          in
          if interest <> 0 then begin
            !fds.(!i) <- fdi;
            !events.(!i) <- interest;
            !targets.(!i) <- P_conn conn;
            incr i
          end)
        t.conns;
      let n_used = !i in
      (* Zero out the tail so stale entries are never polled. *)
      for k = n_used to Array.length !fds - 1 do
        !fds.(k) <- fd_int t.wake_r;
        !events.(k) <- 0
      done;
      Array.fill !revents 0 (Array.length !revents) 0;
      Mutex.unlock t.mu;
      let ready =
        match poll_arrays !fds !events !revents 250 with
        | r -> r
        | exception Failure _ -> 0
      in
      Mutex.lock t.mu;
      if ready > 0 then begin
        if !revents.(0) land interest_read <> 0 then drain_wake_pipe t;
        for k = 2 to n_used - 1 do
          if !revents.(k) <> 0 then
            match !targets.(k) with
            | P_conn conn -> (
                (* The state may have moved since the poll snapshot (a
                   worker finished, a sweep closed it): re-check under the
                   lock and only touch sockets the mux still owns. *)
                match conn.c_state with
                | Reading when Hashtbl.mem t.conns (fd_int conn.c_fd) ->
                    read_conn t conn chunk
                | Writing w when Hashtbl.mem t.conns (fd_int conn.c_fd) ->
                    write_conn t conn w
                | _ -> ())
            | P_listen | P_wake -> ()
        done;
        if listening && !revents.(1) land interest_read <> 0 then
          accept_burst t listen_fd 64
      end;
      Mutex.unlock t.mu;
      loop ()
    end
  in
  loop ();
  Mutex.lock t.mu;
  t.stop_workers <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  List.iter Thread.join workers;
  (match t.reserve with
  | Some fd ->
      t.reserve <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
