(* Spans, metrics, and structured logs.  Everything here is single-domain
   mutable state; the contract that matters is the disabled fast path — one
   bool load and branch per instrumentation site — because sites sit inside
   the innermost enumeration loops (see bench pr3 for the measured residue).

   Since PR 4 instrumented code can run inside Core.Pool worker domains (the
   parallel determined-scan), so every entry point additionally requires
   [Domain.is_main_domain]: off the main domain, spans and metric updates
   no-op rather than race on the registry and the span stack.  The check
   sits after the [!on] load, so the disabled fast path is unchanged and
   the is-main probe is only paid when telemetry is actually recording. *)

let on = ref false
let enabled () = !on && Domain.is_main_domain ()
let set_enabled b = on := b

(* ------------------------------------------------------------------ *)
(* Run context                                                         *)
(* ------------------------------------------------------------------ *)

let ctx : (string * string) list ref = ref []

let set_context kvs =
  let keys = List.map fst kvs in
  ctx := kvs @ List.filter (fun (k, _) -> not (List.mem k keys)) !ctx

(* The source revision, probed once at first export: a telemetry file names
   the code that produced it.  Failure (no git, no repo) degrades to
   "unknown" rather than an exception — exporters run inside at_exit. *)
let git_describe =
  lazy
    (try
       let ic =
         Unix.open_process_in "git describe --always --dirty 2>/dev/null"
       in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let context () =
  if List.mem_assoc "git" !ctx then !ctx
  else ("git", Lazy.force git_describe) :: !ctx

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sid : int;
  parent : int;  (* -1 for roots *)
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
}

(* An open frame on the span stack; [child_ns] accumulates closed children
   so self time = duration - child_ns. *)
type frame = {
  f_sid : int;
  f_parent : int;
  f_name : string;
  f_attrs : (string * string) list;
  f_start : int64;
  mutable f_child_ns : int64;
}

type agg = { mutable a_count : int; mutable a_total : int64; mutable a_self : int64 }

let max_recorded_spans = 400_000
let next_sid = ref 0
let stack : frame list ref = ref []
let recorded : span list ref = ref []  (* reversed completion order *)
let recorded_count = ref 0
let dropped = ref 0
let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 64

let span_count () = !recorded_count
let dropped_spans () = !dropped

let current_span_id () =
  match !stack with [] -> None | f :: _ -> Some f.f_sid

let agg_of name =
  match Hashtbl.find_opt aggregates name with
  | Some a -> a
  | None ->
      let a = { a_count = 0; a_total = 0L; a_self = 0L } in
      Hashtbl.add aggregates name a;
      a

let close_frame f =
  let now = Monotonic.now_ns () in
  let dur = Int64.sub now f.f_start in
  (match !stack with
  | parent :: _ -> parent.f_child_ns <- Int64.add parent.f_child_ns dur
  | [] -> ());
  let a = agg_of f.f_name in
  a.a_count <- a.a_count + 1;
  a.a_total <- Int64.add a.a_total dur;
  a.a_self <- Int64.add a.a_self (Int64.sub dur f.f_child_ns);
  if !recorded_count < max_recorded_spans then begin
    recorded :=
      {
        sid = f.f_sid;
        parent = f.f_parent;
        name = f.f_name;
        attrs = f.f_attrs;
        start_ns = f.f_start;
        dur_ns = dur;
      }
      :: !recorded;
    incr recorded_count
  end
  else incr dropped

let with_span ?(attrs = []) name f =
  if not (!on && Domain.is_main_domain ()) then f ()
  else begin
    let sid = !next_sid in
    incr next_sid;
    let parent = match !stack with [] -> -1 | p :: _ -> p.f_sid in
    let frame =
      {
        f_sid = sid;
        f_parent = parent;
        f_name = name;
        f_attrs = attrs;
        f_start = Monotonic.now_ns ();
        f_child_ns = 0L;
      }
    in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top.f_sid = sid -> stack := rest
        | _ ->
            (* A child escaped without closing (impossible with Fun.protect
               discipline); resynchronize by popping to our frame. *)
            let rec pop = function
              | top :: rest when top.f_sid <> sid -> pop rest
              | _ :: rest -> rest
              | [] -> []
            in
            stack := pop !stack);
        close_frame frame)
      f
  end

let seconds_of_ns ns = Int64.to_float ns *. 1e-9

let span_aggregates () =
  Hashtbl.fold
    (fun name a acc ->
      (name, a.a_count, seconds_of_ns a.a_total, seconds_of_ns a.a_self) :: acc)
    aggregates []
  |> List.sort (fun (_, _, t1, _) (_, _, t2, _) -> compare t2 t1)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = { c_name : string; mutable c_value : int }
  type gauge = { g_name : string; mutable g_value : float }

  (* Log-scale buckets: 2 per octave starting at 1e-9, so ~70 octaves cover
     one nanosecond up to ~6e11 — any latency or size this system sees. *)
  let nbuckets = 142
  let bucket_lo = 1e-9
  let per_octave = 2.

  type histogram = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type metric = C of counter | G of gauge | H of histogram

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
  (* Insertion order, for stable exports. *)
  let order : string list ref = ref []

  let register name make read =
    match Hashtbl.find_opt registry name with
    | Some m -> read m
    | None ->
        let v = make () in
        Hashtbl.add registry name v;
        order := name :: !order;
        read (Hashtbl.find registry name)

  let counter name =
    register name
      (fun () -> C { c_name = name; c_value = 0 })
      (function
        | C c -> c
        | _ -> invalid_arg ("Telemetry.Metrics.counter: " ^ name ^ " is not a counter"))

  let incr ?(by = 1) c =
    if !on && Domain.is_main_domain () then c.c_value <- c.c_value + by
  let counter_value c = c.c_value

  let gauge name =
    register name
      (fun () -> G { g_name = name; g_value = 0. })
      (function
        | G g -> g
        | _ -> invalid_arg ("Telemetry.Metrics.gauge: " ^ name ^ " is not a gauge"))

  let set g v = if !on && Domain.is_main_domain () then g.g_value <- v
  let gauge_value g = g.g_value

  let histogram name =
    register name
      (fun () ->
        H
          {
            h_name = name;
            h_count = 0;
            h_sum = 0.;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make nbuckets 0;
          })
      (function
        | H h -> h
        | _ ->
            invalid_arg
              ("Telemetry.Metrics.histogram: " ^ name ^ " is not a histogram"))

  let bucket_of v =
    if v <= bucket_lo then 0
    else
      let i = 1 + int_of_float (Float.log2 (v /. bucket_lo) *. per_octave) in
      if i >= nbuckets then nbuckets - 1 else i

  let observe h v =
    if !on && Domain.is_main_domain () then begin
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = h.h_buckets.(bucket_of v) in
      h.h_buckets.(bucket_of v) <- b + 1
    end

  let hist_count h = h.h_count
  let hist_sum h = h.h_sum

  (* Geometric midpoint of bucket [i], the representative value reported for
     samples that landed there. *)
  let bucket_mid i =
    if i = 0 then bucket_lo
    else bucket_lo *. Float.exp2 ((float_of_int i -. 0.5) /. per_octave)

  let percentile h p =
    if h.h_count = 0 then 0.
    else if p <= 0. then h.h_min
    else if p >= 1. then h.h_max
    else begin
      let rank =
        let r = int_of_float (ceil (p *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let rec find i cum =
        if i >= nbuckets then h.h_max
        else
          let cum = cum + h.h_buckets.(i) in
          if cum >= rank then bucket_mid i else find (i + 1) cum
      in
      let est = find 0 0 in
      (* Clamping to the observed range makes single-sample and all-equal
         series exact instead of bucket-quantized. *)
      Float.min h.h_max (Float.max h.h_min est)
    end

  let in_order () =
    List.rev_map (fun name -> Hashtbl.find registry name) !order

  let reset_values () =
    Hashtbl.iter
      (fun _ -> function
        | C c -> c.c_value <- 0
        | G g -> g.g_value <- 0.
        | H h ->
            h.h_count <- 0;
            h.h_sum <- 0.;
            h.h_min <- infinity;
            h.h_max <- neg_infinity;
            Array.fill h.h_buckets 0 nbuckets 0)
      registry

  (* ---------------- JSON / Prometheus emission ---------------- *)

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_kvs kvs =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "%S: \"%s\"" k (json_escape v))
         kvs)

  let float_json v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.1f" v
    else Printf.sprintf "%.9g" v

  let metrics_json () =
    let counters, gauges, hists =
      List.fold_left
        (fun (cs, gs, hs) -> function
          | C c -> (c :: cs, gs, hs)
          | G g -> (cs, g :: gs, hs)
          | H h -> (cs, gs, h :: hs))
        ([], [], []) (in_order ())
    in
    let counters = List.rev counters
    and gauges = List.rev gauges
    and hists = List.rev hists in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"header\": { ";
    Buffer.add_string buf (json_kvs (context ()));
    Buffer.add_string buf " },\n  \"counters\": {";
    Buffer.add_string buf
      (String.concat ","
         (List.map
            (fun c ->
              Printf.sprintf "\n    \"%s\": %d" (json_escape c.c_name) c.c_value)
            counters));
    Buffer.add_string buf "\n  },\n  \"gauges\": {";
    Buffer.add_string buf
      (String.concat ","
         (List.map
            (fun g ->
              Printf.sprintf "\n    \"%s\": %s" (json_escape g.g_name)
                (float_json g.g_value))
            gauges));
    Buffer.add_string buf "\n  },\n  \"histograms\": {";
    Buffer.add_string buf
      (String.concat ","
         (List.map
            (fun h ->
              Printf.sprintf
                "\n    \"%s\": { \"count\": %d, \"sum\": %s, \"min\": %s, \
                 \"max\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s }"
                (json_escape h.h_name) h.h_count (float_json h.h_sum)
                (float_json (if h.h_count = 0 then 0. else h.h_min))
                (float_json (if h.h_count = 0 then 0. else h.h_max))
                (float_json (percentile h 0.5))
                (float_json (percentile h 0.9))
                (float_json (percentile h 0.99)))
            hists));
    Buffer.add_string buf "\n  },\n  \"spans\": {";
    Buffer.add_string buf
      (String.concat ","
         (List.map
            (fun (name, n, total, self) ->
              Printf.sprintf
                "\n    \"%s\": { \"count\": %d, \"total_s\": %.6f, \
                 \"self_s\": %.6f }"
                (json_escape name) n total self)
            (span_aggregates ())));
    Buffer.add_string buf "\n  }\n}\n";
    Buffer.contents buf

  let prom_name name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

  let prom_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let metrics_prometheus () =
    let buf = Buffer.create 1024 in
    let labels =
      String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_escape v))
           (context ()))
    in
    Buffer.add_string buf
      "# learnq metrics export (Prometheus text exposition)\n";
    Buffer.add_string buf "# TYPE learnq_run_info gauge\n";
    Buffer.add_string buf (Printf.sprintf "learnq_run_info{%s} 1\n" labels);
    List.iter
      (function
        | C c ->
            let n = prom_name c.c_name in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" n c.c_value)
        | G g ->
            let n = prom_name g.g_name in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
            Buffer.add_string buf (Printf.sprintf "%s %.9g\n" n g.g_value)
        | H h ->
            let n = prom_name h.h_name in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
            List.iter
              (fun q ->
                Buffer.add_string buf
                  (Printf.sprintf "%s{quantile=\"%g\"} %.9g\n" n q
                     (percentile h q)))
              [ 0.5; 0.9; 0.99 ];
            Buffer.add_string buf
              (Printf.sprintf "%s_sum %.9g\n%s_count %d\n" n h.h_sum n
                 h.h_count))
      (in_order ());
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Trace export                                                        *)
(* ------------------------------------------------------------------ *)

let trace_json () =
  let spans = List.rev !recorded in
  let t0 =
    match spans with [] -> 0L | s :: _ ->
      List.fold_left (fun acc s -> Int64.min acc s.start_ns) s.start_ns spans
  in
  let us_of ns = Int64.to_float (Int64.sub ns t0) /. 1e3 in
  let buf = Buffer.create (4096 + (96 * List.length spans)) in
  Buffer.add_string buf "{\n\"otherData\": { ";
  Buffer.add_string buf (Metrics.json_kvs (context ()));
  (if !dropped > 0 then
     Buffer.add_string buf
       (Printf.sprintf ", \"dropped_spans\": \"%d\"" !dropped));
  Buffer.add_string buf " },\n\"traceEvents\": [";
  let first = ref true in
  List.iter
    (fun s ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"learnq\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":1,\"tid\":1"
           (Metrics.json_escape s.name) (us_of s.start_ns)
           (Int64.to_float s.dur_ns /. 1e3));
      let args =
        ("span_id", string_of_int s.sid)
        :: (if s.parent >= 0 then [ ("parent", string_of_int s.parent) ] else [])
        @ s.attrs
      in
      Buffer.add_string buf (",\"args\":{" ^ Metrics.json_kvs args ^ "}}"))
    spans;
  Buffer.add_string buf "\n]\n}\n";
  Buffer.contents buf

let pp_span_tree ppf () =
  let spans = List.rev !recorded in
  let children = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace children s.parent
        (s :: (Option.value ~default:[] (Hashtbl.find_opt children s.parent))))
    spans;
  let kids p =
    List.sort
      (fun a b -> compare a.start_ns b.start_ns)
      (Option.value ~default:[] (Hashtbl.find_opt children p))
  in
  let rec pp depth s =
    Format.fprintf ppf "%s%s  %.3f ms%s@,"
      (String.make (2 * depth) ' ')
      s.name
      (Int64.to_float s.dur_ns /. 1e6)
      (match s.attrs with
      | [] -> ""
      | kvs ->
          "  ["
          ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
          ^ "]");
    List.iter (pp (depth + 1)) (kids s.sid)
  in
  Format.fprintf ppf "@[<v>";
  List.iter (pp 0) (kids (-1));
  if !dropped > 0 then
    Format.fprintf ppf "(… %d spans over the in-memory cap not shown)@,"
      !dropped;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

module Log = struct
  let current : level option ref = ref (Some Warn)
  let ppf = ref Format.err_formatter
  let set_level l = current := l
  let level () = !current
  let set_formatter f = ppf := f

  let logs l =
    match !current with None -> false | Some min -> severity l >= severity min

  let epoch = lazy (Monotonic.now ())

  let emit l kv msg =
    let kv =
      match current_span_id () with
      | Some sid -> kv @ [ ("span", string_of_int sid) ]
      | None -> kv
    in
    let kv =
      (* Correlate with the request being served, when there is one: the
         trace id the daemon installed on this thread. *)
      match Obs.Trace.current () with
      | Some t -> kv @ [ ("trace", t) ]
      | None -> kv
    in
    let kvs =
      String.concat ""
        (List.map
           (fun (k, v) ->
             let v =
               if String.contains v ' ' then "\"" ^ v ^ "\"" else v
             in
             Printf.sprintf " %s=%s" k v)
           kv)
    in
    Format.fprintf !ppf "learnq: [%7.3f %-5s] %s%s@."
      (Monotonic.now () -. Lazy.force epoch)
      (level_to_string l) msg kvs

  let log l ?(kv = []) msg = if logs l then emit l kv msg
  let debug ?kv msg = log Debug ?kv msg
  let info ?kv msg = log Info ?kv msg
  let warn ?kv msg = log Warn ?kv msg
  let error ?kv msg = log Error ?kv msg
end

(* ------------------------------------------------------------------ *)
(* Summary and reset                                                   *)
(* ------------------------------------------------------------------ *)

let pp_summary ppf () =
  Format.fprintf ppf "@[<v>── telemetry summary ──@,";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %s: %s@," k v)
    (context ());
  let metrics = Metrics.in_order () in
  let any p = List.exists p metrics in
  if any (function Metrics.C c -> c.Metrics.c_value <> 0 | _ -> false) then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (function
        | Metrics.C c when c.Metrics.c_value <> 0 ->
            Format.fprintf ppf "  %-42s %d@," c.Metrics.c_name c.Metrics.c_value
        | _ -> ())
      metrics
  end;
  if any (function Metrics.G g -> g.Metrics.g_value <> 0. | _ -> false)
  then begin
    Format.fprintf ppf "gauges:@,";
    List.iter
      (function
        | Metrics.G g when g.Metrics.g_value <> 0. ->
            Format.fprintf ppf "  %-42s %g@," g.Metrics.g_name g.Metrics.g_value
        | _ -> ())
      metrics
  end;
  if any (function Metrics.H h -> h.Metrics.h_count > 0 | _ -> false)
  then begin
    Format.fprintf ppf "histograms (p50 / p90 / p99):@,";
    List.iter
      (function
        | Metrics.H h when h.Metrics.h_count > 0 ->
            Format.fprintf ppf "  %-42s n=%d  %.3g / %.3g / %.3g@,"
              h.Metrics.h_name h.Metrics.h_count
              (Metrics.percentile h 0.5) (Metrics.percentile h 0.9)
              (Metrics.percentile h 0.99)
        | _ -> ())
      metrics
  end;
  (match span_aggregates () with
  | [] -> ()
  | aggs ->
      Format.fprintf ppf "spans (count, total, self):@,";
      List.iter
        (fun (name, n, total, self) ->
          Format.fprintf ppf "  %-42s %7d  %8.3f ms  %8.3f ms@," name n
            (total *. 1e3) (self *. 1e3))
        aggs);
  Format.fprintf ppf "@]"

let reset () =
  stack := [];
  recorded := [];
  recorded_count := 0;
  dropped := 0;
  next_sid := 0;
  Hashtbl.reset aggregates;
  Metrics.reset_values ();
  ctx := []

(* ------------------------------------------------------------------ *)
(* CLI wiring                                                          *)
(* ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let configure ?trace ?metrics ?log_level ?(summary = false) () =
  (match log_level with Some l -> Log.set_level l | None -> ());
  if trace <> None || metrics <> None || summary then begin
    set_enabled true;
    at_exit (fun () ->
        (* Close any span left open by an early [exit] so its time is
           accounted before export. *)
        while !stack <> [] do
          match !stack with
          | f :: rest ->
              stack := rest;
              close_frame f
          | [] -> ()
        done;
        (match trace with
        | Some path -> ( try write_file path (trace_json ()) with Sys_error _ -> ())
        | None -> ());
        (match metrics with
        | Some path -> (
            try
              write_file path (Metrics.metrics_json ());
              write_file (path ^ ".prom") (Metrics.metrics_prometheus ())
            with Sys_error _ -> ())
        | None -> ());
        if summary then Format.eprintf "%a@." pp_summary ())
  end
