lib/joinlearn/semijoin_interactive.mli: Core Relational Semijoin Signature
