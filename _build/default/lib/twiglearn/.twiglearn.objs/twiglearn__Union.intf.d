lib/twiglearn/union.mli: Core Twig Xmltree
