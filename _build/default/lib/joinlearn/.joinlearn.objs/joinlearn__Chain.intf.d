lib/joinlearn/chain.mli: Core Relational Signature
