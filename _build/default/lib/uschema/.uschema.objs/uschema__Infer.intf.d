lib/uschema/infer.mli: Dme Schema Xmltree
