(** Parser for the XPath fragment corresponding to twig queries.

    Accepted syntax (the fragment of XPath 1.0 the paper's class captures):

    {v
    query  ::= ('/' | '//') step (('/' | '//') step)*
    step   ::= test pred*
    test   ::= NAME | '@' NAME | '*'
    pred   ::= '[' rel ']'
    rel    ::= ('.//')? node
    node   ::= test pred* (('/' | '//') node)?
    v}

    Examples: [/site/regions//item\[location\]\[quantity\]],
    [//person\[address/city\]\[.//profile\]/name]. *)

exception Syntax_error of string

val query : string -> Query.t
(** @raise Syntax_error on input outside the fragment. *)

val query_opt : string -> Query.t option
(** [None] instead of raising — used to classify benchmark queries as
    twig-expressible or not. *)

val query_result : ?source:string -> string -> (Query.t, Core.Error.t) result
(** Non-raising variant of {!query}: malformed input yields a structured
    {!Core.Error.t} carrying [source] (default ["<query>"]) and the
    line/column of the failure. *)
