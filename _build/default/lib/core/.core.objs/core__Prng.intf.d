lib/core/prng.mli:
