(* The robustness layer: budgets, structured errors at the input boundary,
   and fault injection for interactive sessions. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_fuel () =
  let b = Core.Budget.create ~fuel:10 () in
  for _ = 1 to 9 do
    Core.Budget.tick b
  done;
  Alcotest.(check bool) "not yet exhausted" false (Core.Budget.exhausted b);
  Core.Budget.tick b;
  (* The fuel is spent: the next tick will raise. *)
  Alcotest.(check bool) "spent" true (Core.Budget.exhausted b);
  (match Core.Budget.tick b with
  | exception Core.Budget.Out_of_budget -> ()
  | () -> Alcotest.fail "tick 11 must raise");
  (* Once tripped, every later tick raises too. *)
  match Core.Budget.tick b with
  | exception Core.Budget.Out_of_budget -> ()
  | () -> Alcotest.fail "a tripped budget stays tripped"

let test_budget_cost () =
  let b = Core.Budget.create ~fuel:10 () in
  Core.Budget.tick ~cost:7 b;
  Core.Budget.tick ~cost:3 b;
  match Core.Budget.tick b with
  | exception Core.Budget.Out_of_budget ->
      Alcotest.(check int) "fuel accounted" 11 (Core.Budget.stats b).fuel_spent
  | () -> Alcotest.fail "cost must count against fuel"

let test_budget_timeout () =
  (* A deadline already in the past trips on the first clock check. *)
  let b = Core.Budget.create ~timeout:0.0 () in
  match
    for _ = 1 to 100_000 do
      Core.Budget.tick b
    done
  with
  | exception Core.Budget.Out_of_budget -> ()
  | () -> Alcotest.fail "expired deadline must trip"

let test_budget_cancel () =
  let b = Core.Budget.unlimited () in
  Alcotest.(check bool) "unlimited" true (Core.Budget.is_unlimited b);
  Core.Budget.tick b;
  Core.Budget.cancel b;
  match Core.Budget.tick b with
  | exception Core.Budget.Out_of_budget -> ()
  | () -> Alcotest.fail "cancelled budget must trip"

let test_budget_run () =
  let b = Core.Budget.create ~fuel:5 () in
  (match Core.Budget.run b (fun () -> 42) with
  | Core.Budget.Done 42 -> ()
  | _ -> Alcotest.fail "normal return is Done");
  let acc = ref [] in
  match
    Core.Budget.run b
      ~partial:(fun () -> Some !acc)
      (fun () ->
        for i = 1 to 100 do
          Core.Budget.tick b;
          acc := i :: !acc
        done;
        !acc)
  with
  | Core.Budget.Exhausted { partial = Some [ 5; 4; 3; 2; 1 ]; spent } ->
      Alcotest.(check bool) "spent counted" true (spent.fuel_spent > 5)
  | _ -> Alcotest.fail "exhaustion must surface the partial accumulator"

(* ------------------------------------------------------------------ *)
(* Error values and exit codes                                         *)
(* ------------------------------------------------------------------ *)

let test_position_of_offset () =
  let input = "ab\ncde\nf" in
  let check name offset line column =
    let p = Core.Error.position_of_offset input offset in
    Alcotest.(check (pair int int)) name (line, column) (p.line, p.column)
  in
  check "start" 0 1 1;
  check "before newline" 2 1 3;
  check "after newline" 3 2 1;
  check "last line" 7 3 1;
  check "clamped" 99 3 2

let test_exit_codes () =
  let parse = Core.Error.parse_error ~source:"x" "bad" in
  let inval = Core.Error.invalid_input ~what:"csv" "dup" in
  let spent = Core.Budget.stats (Core.Budget.unlimited ()) in
  let budget = Core.Error.budget_exhausted ~engine:"twig" spent in
  Alcotest.(check int) "parse → 64" 64 (Core.Error.exit_code parse);
  Alcotest.(check int) "invalid → 64" 64 (Core.Error.exit_code inval);
  Alcotest.(check int) "budget → 3" 3 (Core.Error.exit_code budget);
  Alcotest.(check int) "degraded constant" 2 Core.Error.exit_degraded

(* ------------------------------------------------------------------ *)
(* Parser _result variants: structured errors with positions           *)
(* ------------------------------------------------------------------ *)

let error_position = function
  | Error (Core.Error.Parse { position; _ }) -> position
  | Error e -> Alcotest.fail ("unexpected error: " ^ Core.Error.to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

let test_twig_result () =
  (match Twig.Parse.query_result "//a[b]/c" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.Error.to_string e));
  match error_position (Twig.Parse.query_result "//a[b") with
  | Some p -> Alcotest.(check int) "column points into the query" 6 p.column
  | None -> Alcotest.fail "twig errors must carry a position"

let test_csv_result_ragged () =
  let csv = "a,b\n1,2\n3\n" in
  match Relational.Csv.parse_result ~name:"t" csv with
  | Ok _ -> Alcotest.fail "ragged row must be rejected"
  | Error (Core.Error.Parse { position = Some p; message; _ }) ->
      Alcotest.(check int) "offending line" 3 p.line;
      Alcotest.(check bool) "message mentions the row" true
        (String.length message > 0)
  | Error e -> Alcotest.fail ("unexpected error: " ^ Core.Error.to_string e)

let test_csv_result_unterminated_and_dup () =
  (match Relational.Csv.parse_result ~name:"t" "a,b\n\"x,2\n" with
  | Error (Core.Error.Parse { position = Some p; _ }) ->
      Alcotest.(check int) "quote error line" 2 p.line
  | _ -> Alcotest.fail "unterminated quote must position its line");
  match Relational.Csv.parse_result ~name:"t" "a,a\n1,2\n" with
  | Error (Core.Error.Parse _) -> ()
  | _ -> Alcotest.fail "duplicate headers must be a structured error"

let test_schema_result () =
  (match Uschema.Schema.parse_result "root: r\nr -> a" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.Error.to_string e));
  (match Uschema.Schema.parse_result "not a root line" with
  | Error (Core.Error.Parse { position = Some p; _ }) ->
      Alcotest.(check int) "root error line" 1 p.line
  | _ -> Alcotest.fail "missing root line must be positioned");
  match Uschema.Schema.parse_result "root: r\nr -> a\nbroken rule" with
  | Error (Core.Error.Parse { position = Some p; _ }) ->
      Alcotest.(check int) "rule error line" 3 p.line
  | _ -> Alcotest.fail "missing '->' must be positioned"

(* Arbitrary junk yields Error, never an exception, at every entry point. *)
let prop_results_never_raise =
  QCheck.Test.make ~name:"_result parsers never raise" ~count:300
    QCheck.(string_of_size Gen.(0 -- 30))
    (fun s ->
      let ok = function Ok _ | Error (Core.Error.Parse _) -> true | _ -> false in
      ok (Twig.Parse.query_result s)
      && ok (Relational.Csv.parse_result ~name:"t" s)
      && ok (Uschema.Schema.parse_result s))

(* ------------------------------------------------------------------ *)
(* Flaky oracles and sessions that survive them                        *)
(* ------------------------------------------------------------------ *)

let test_flaky_profile_validation () =
  (match Core.Flaky.profile ~noise:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "noise > 1 must be rejected");
  match Core.Flaky.profile ~refusal:0.7 ~timeout:0.7 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "refusal + timeout > 1 must be rejected"

let test_flaky_wrap () =
  let rng = Core.Prng.create 7 in
  let oracle _ = true in
  (* The reliable profile is the identity. *)
  for _ = 1 to 50 do
    match Core.Flaky.wrap ~rng oracle () with
    | Core.Flaky.Label true -> ()
    | _ -> Alcotest.fail "reliable wrap must relay the oracle"
  done;
  (* Full noise always flips; full refusal never answers. *)
  let noisy = Core.Flaky.profile ~noise:1.0 () in
  (match Core.Flaky.wrap ~profile:noisy ~rng oracle () with
  | Core.Flaky.Label false -> ()
  | _ -> Alcotest.fail "noise 1.0 must flip");
  let refusing = Core.Flaky.profile ~refusal:1.0 () in
  match Core.Flaky.wrap ~profile:refusing ~rng oracle () with
  | Core.Flaky.Refused -> ()
  | _ -> Alcotest.fail "refusal 1.0 must refuse"

let join_instance seed =
  let rng = Core.Prng.create seed in
  Relational.Generator.pair_instance ~rng ~left_rows:6 ~right_rows:6 ()

let test_session_survives_refusals () =
  let inst = join_instance 11 in
  let profile = Core.Flaky.profile ~refusal:1.0 () in
  let outcome =
    Joinlearn.Interactive.run_with_goal ~profile ~left:inst.left
      ~right:inst.right ~goal:inst.planted ()
  in
  Alcotest.(check int) "nothing asked" 0 outcome.questions;
  Alcotest.(check bool) "refusals counted" true (outcome.refused > 0);
  Alcotest.(check bool) "still produces a candidate" true
    (outcome.query <> None)

let test_session_budget_degrades () =
  let inst = join_instance 12 in
  let budget = Core.Budget.create ~fuel:3 () in
  let outcome =
    Joinlearn.Interactive.run_with_goal ~budget ~left:inst.left
      ~right:inst.right ~goal:inst.planted ()
  in
  Alcotest.(check bool) "degraded flag" true outcome.degraded

(* ------------------------------------------------------------------ *)
(* Join fallback: exact → robust under budget/inconsistency            *)
(* ------------------------------------------------------------------ *)

let test_join_fallback () =
  let inst = join_instance 13 in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  let goal = Joinlearn.Signature.of_predicate space inst.planted in
  let examples =
    Joinlearn.Interactive.items_of space inst.left inst.right
    |> List.map (fun (it : Joinlearn.Interactive.item) ->
           Core.Example.of_labeled
             (it.mask, Joinlearn.Signature.subset goal it.mask))
  in
  let exact = Joinlearn.Fallback.learn space examples in
  Alcotest.(check bool) "consistent sample: exact rung" false exact.degraded;
  Alcotest.(check int) "no training errors" 0 exact.training_errors;
  let starved = Joinlearn.Fallback.learn ~budget:(Core.Budget.create ~fuel:0 ()) space examples in
  Alcotest.(check bool) "starved budget: robust rung" true starved.degraded

let () =
  Alcotest.run "error"
    [
      ( "budget",
        [
          Alcotest.test_case "fuel" `Quick test_budget_fuel;
          Alcotest.test_case "cost" `Quick test_budget_cost;
          Alcotest.test_case "timeout" `Quick test_budget_timeout;
          Alcotest.test_case "cancel" `Quick test_budget_cancel;
          Alcotest.test_case "run/partial" `Quick test_budget_run;
        ] );
      ( "error",
        [
          Alcotest.test_case "position_of_offset" `Quick test_position_of_offset;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "parsers",
        [
          Alcotest.test_case "twig result" `Quick test_twig_result;
          Alcotest.test_case "csv ragged" `Quick test_csv_result_ragged;
          Alcotest.test_case "csv quote/dup" `Quick
            test_csv_result_unterminated_and_dup;
          Alcotest.test_case "schema result" `Quick test_schema_result;
          qcheck prop_results_never_raise;
        ] );
      ( "flaky",
        [
          Alcotest.test_case "profile validation" `Quick
            test_flaky_profile_validation;
          Alcotest.test_case "wrap" `Quick test_flaky_wrap;
          Alcotest.test_case "session survives refusals" `Quick
            test_session_survives_refusals;
          Alcotest.test_case "session budget degrades" `Quick
            test_session_budget_degrades;
        ] );
      ( "fallback",
        [ Alcotest.test_case "join exact→robust" `Quick test_join_fallback ] );
    ]
