test/test_graphdb.mli:
