module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = { root : string; rules : Dme.t SMap.t }

let make ~root ~rules =
  let table =
    List.fold_left
      (fun acc (l, dme) ->
        if SMap.mem l acc then
          invalid_arg ("Schema.make: duplicate rule for " ^ l)
        else SMap.add l dme acc)
      SMap.empty rules
  in
  { root; rules = table }

let root s = s.root

let empty_dme = [ Dme.empty_clause ]

let rule s label =
  match SMap.find_opt label s.rules with Some d -> d | None -> empty_dme

let rules s = SMap.bindings s.rules

let labels s =
  let acc = SSet.singleton s.root in
  let acc =
    SMap.fold
      (fun l dme acc ->
        SSet.union (SSet.add l acc) (SSet.of_list (Dme.alphabet dme)))
      s.rules acc
  in
  SSet.elements acc

let disjunction_free s =
  SMap.for_all (fun _ dme -> Dme.disjunction_free dme) s.rules

let size s = SMap.fold (fun _ dme acc -> acc + Dme.size dme) s.rules 0

type violation = {
  at : Xmltree.Tree.path;
  label : string;
  found : Dme.Labels.t;
  expected : Dme.t;
}

let children_labels (n : Xmltree.Tree.t) =
  n.children
  |> List.filter (fun c -> not (Xmltree.Tree.is_text c))
  |> List.map (fun (c : Xmltree.Tree.t) -> c.label)
  |> Dme.Labels.of_list

let validate s tree =
  let violations = ref [] in
  if tree.Xmltree.Tree.label <> s.root then
    violations :=
      {
        at = [];
        label = tree.Xmltree.Tree.label;
        found = children_labels tree;
        expected = empty_dme;
      }
      :: !violations;
  Xmltree.Tree.fold
    (fun path (n : Xmltree.Tree.t) () ->
      if not (Xmltree.Tree.is_text n) then
        let w = children_labels n in
        let dme = rule s n.label in
        if not (Dme.satisfies dme w) then
          violations :=
            { at = path; label = n.label; found = w; expected = dme }
            :: !violations)
    tree ();
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let valid s tree = validate s tree = Ok ()

let productive s =
  (* Least fixpoint: a label is productive when some clause of its rule only
     requires productive labels. *)
  let all = labels s in
  let step productive_set =
    List.fold_left
      (fun acc l ->
        let dme = rule s l in
        let ok =
          List.exists
            (fun clause ->
              List.for_all
                (fun (l', m) ->
                  Multiplicity.nullable m || SSet.mem l' acc)
                clause)
            dme
        in
        if ok then SSet.add l acc else acc)
      productive_set all
  in
  let rec fix set =
    let set' = step set in
    if SSet.equal set set' then set else fix set'
  in
  SSet.elements (fix SSet.empty)

let reachable s =
  let rec go frontier seen =
    match frontier with
    | [] -> seen
    | l :: rest ->
        if SSet.mem l seen then go rest seen
        else
          let seen = SSet.add l seen in
          let next = Dme.alphabet (rule s l) in
          go (next @ rest) seen
  in
  SSet.elements (go [ s.root ] SSet.empty)

let pp ppf s =
  Format.fprintf ppf "@[<v>root: %s" s.root;
  SMap.iter
    (fun l dme -> Format.fprintf ppf "@,%s -> %a" l Dme.pp dme)
    s.rules;
  Format.fprintf ppf "@]"

let to_string s = Format.asprintf "%a" pp s

(* Internal: a parse failure tagged with its 1-based line number, so
   [parse_result] can build a positioned {!Core.Error.t} while the legacy
   [parse] keeps raising [Invalid_argument] with the historical messages. *)
exception Located of string * int

let parse_located input =
  let lines =
    String.split_on_char '\n' input
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> raise (Located ("Schema.parse: empty input", 1))
  | (root_lineno, root_line) :: rule_lines ->
      let root =
        let prefix = "root:" in
        if
          String.length root_line > String.length prefix
          && String.sub root_line 0 (String.length prefix) = prefix
        then
          String.trim
            (String.sub root_line (String.length prefix)
               (String.length root_line - String.length prefix))
        else
          raise
            (Located
               ( "Schema.parse: expected a 'root: <label>' first line",
                 root_lineno ))
      in
      let parse_rule (lineno, line) =
        match
          (* Split on the first "->". *)
          let rec find i =
            if i + 1 >= String.length line then None
            else if line.[i] = '-' && line.[i + 1] = '>' then Some i
            else find (i + 1)
          in
          find 0
        with
        | None -> raise (Located ("Schema.parse: missing '->' in " ^ line, lineno))
        | Some i ->
            let label = String.trim (String.sub line 0 i) in
            let body =
              String.trim
                (String.sub line (i + 2) (String.length line - i - 2))
            in
            if label = "" then raise (Located ("Schema.parse: empty label", lineno));
            let dme =
              try Dme.parse body
              with Invalid_argument msg -> raise (Located (msg, lineno))
            in
            (label, dme)
      in
      make ~root ~rules:(List.map parse_rule rule_lines)

let parse input =
  try parse_located input with Located (msg, _) -> invalid_arg msg

let parse_result ?(source = "<schema>") input =
  match parse_located input with
  | s -> Ok s
  | exception Located (msg, line) ->
      Error
        (Core.Error.parse_error ~source
           ~position:{ Core.Error.line; column = 1 }
           msg)
  | exception Invalid_argument msg ->
      (* [make] rejects duplicate rules; no single line to blame. *)
      Error (Core.Error.parse_error ~source msg)

let pp_violation ppf v =
  Format.fprintf ppf "at %a: <%s> children %a do not satisfy %a"
    Xmltree.Tree.pp_path v.at v.label
    (Dme.Labels.pp Format.pp_print_string)
    v.found Dme.pp v.expected
