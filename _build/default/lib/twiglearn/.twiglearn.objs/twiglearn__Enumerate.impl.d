lib/twiglearn/enumerate.ml: List Seq Twig
