open Query

(* Physical-identity table: canonical nodes to their ids.  [Hashtbl.hash] is
   structural (and depth-capped), which is consistent with (==) — physically
   equal values hash equally — and groups structurally similar nodes whose
   buckets are then scanned by pointer comparison. *)
module Phys = Hashtbl.Make (struct
  type t = filter

  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* A node's shape key: the test id plus (axis, child id) per sub-edge, with
   children already canonical — a flat int-list key, cheap to hash exactly
   (no depth cap, unlike hashing the tree itself). *)
type shape = int * (int * int) list

type state = {
  label_ids : (string, int) Hashtbl.t;
  label_nodes : (string, test) Hashtbl.t;
  table : (shape, filter) Hashtbl.t;  (* shape -> canonical node *)
  ids : int Phys.t;  (* canonical node -> id *)
  mutable next_id : int;
  mutable gen : int;
}

let fresh_state () =
  {
    label_ids = Hashtbl.create 256;
    label_nodes = Hashtbl.create 256;
    table = Hashtbl.create 4096;
    ids = Phys.create 4096;
    next_id = 0;
    gen = 0;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state

(* Read-mostly config shared across domains; racy reads are benign. *)
let max_nodes = ref (1 lsl 20)
let set_max_nodes n = max_nodes := max 1024 n

let clear_state st =
  Hashtbl.reset st.label_ids;
  Hashtbl.reset st.label_nodes;
  Hashtbl.reset st.table;
  Phys.reset st.ids;
  st.next_id <- 0;
  st.gen <- st.gen + 1

let clear () = clear_state (Domain.DLS.get dls)
let generation () = (Domain.DLS.get dls).gen
let live_nodes () = (Domain.DLS.get dls).next_id

let axis_code = function Child -> 0 | Descendant -> 1

(* Test ids: 0 is the wildcard, labels from 1 in first-seen order. *)
let test_id st = function
  | Wildcard -> 0
  | Label l -> (
      match Hashtbl.find_opt st.label_ids l with
      | Some i -> i
      | None ->
          let i = Hashtbl.length st.label_ids + 1 in
          Hashtbl.add st.label_ids l i;
          i)

let intern_test st = function
  | Wildcard -> Wildcard
  | Label l -> (
      match Hashtbl.find_opt st.label_nodes l with
      | Some t -> t
      | None ->
          let t = Label l in
          Hashtbl.add st.label_nodes l t;
          t)

let rec intern st (f : filter) : filter * int =
  match Phys.find_opt st.ids f with
  | Some id -> (f, id)
  | None ->
      let subs =
        List.map
          (fun (a, g) ->
            let g', gid = intern st g in
            (a, g', gid))
          f.fsubs
      in
      let shape : shape =
        (test_id st f.ftest, List.map (fun (a, _, gid) -> (axis_code a, gid)) subs)
      in
      (match Hashtbl.find_opt st.table shape with
      | Some canon -> (canon, Phys.find st.ids canon)
      | None ->
          let canon =
            {
              ftest = intern_test st f.ftest;
              fsubs = List.map (fun (a, g', _) -> (a, g')) subs;
            }
          in
          let id = st.next_id in
          st.next_id <- id + 1;
          Hashtbl.add st.table shape canon;
          Phys.add st.ids canon id;
          (canon, id))

let filter f =
  let st = Domain.DLS.get dls in
  if st.next_id > !max_nodes then clear_state st;
  intern st f

let test t = intern_test (Domain.DLS.get dls) t
