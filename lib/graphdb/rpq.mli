(** Regular path queries: evaluation of a regular language over an
    edge-labeled graph.  A pair [(u, v)] is an answer when some directed
    path from [u] to [v] spells a word of the language.  Evaluation is the
    standard product construction: BFS over (graph node × DFA state).

    This is the query class the paper identifies as "the most typical graph
    database queries" and seeks to learn (Section 3).

    Every traversal accepts an optional {!Core.Budget.t}, ticked once per
    product-state expansion (or per extended walk for the path enumerators);
    when the budget runs out the raising entry points throw
    [Core.Budget.Out_of_budget], while {!eval_within} returns the partial
    answer set computed so far. *)

val eval : ?budget:Core.Budget.t -> Automata.Dfa.t -> Graph.t -> (int * int) list
(** All answer pairs, sorted.  If the language contains ε every [(u, u)] is
    an answer.  @raise Core.Budget.Out_of_budget when [budget] runs out. *)

val eval_within :
  Core.Budget.t -> Automata.Dfa.t -> Graph.t -> (int * int) list Core.Budget.outcome
(** Budgeted evaluation with graceful degradation: [Exhausted] carries the
    (sound but possibly incomplete) answer pairs found before the trip. *)

val selects :
  ?budget:Core.Budget.t -> Automata.Dfa.t -> Graph.t -> int * int -> bool

val witness :
  ?budget:Core.Budget.t ->
  Automata.Dfa.t -> Graph.t -> src:int -> dst:int -> string list option
(** A shortest accepted word labeling a path from [src] to [dst]. *)

val paths_from :
  ?budget:Core.Budget.t ->
  Graph.t -> src:int -> max_len:int -> (int list * string list) list
(** All labeled walks from [src] of length 1..[max_len] (node sequence and
    word), breadth-first.  Beware exponential growth; intended for small
    neighborhoods and example harvesting — pass a [budget] anywhere the
    graph is not tiny. *)

val paths_between :
  ?budget:Core.Budget.t ->
  Graph.t -> src:int -> dst:int -> max_len:int -> (int list * string list) list

val words_between :
  ?budget:Core.Budget.t ->
  Graph.t -> src:int -> dst:int -> max_len:int -> string list list
(** Distinct words among {!paths_between}. *)
