lib/benchkit/xpathmark.mli: Twig
