(* Crowdsourced join inference (paper, Section 3, after Marcus et al.):
   every question to the crowd is a paid Human Intelligence Task, so the
   strategy that needs the fewest labels is literally the cheapest.  This
   example prices the strategies against each other under a fixed budget.

   Run with:  dune exec examples/crowd_join.exe *)

let () =
  let price = 0.05 in
  let budget = 5.0 in
  Printf.printf
    "Inferring a join predicate with crowd workers ($%.2f per HIT, $%.2f \
     budget)\n\n"
    price budget;
  let strategies =
    [
      ("pool order", Core.Interact.first_strategy);
      ("random", Core.Interact.random_strategy);
      ("lattice descent", Joinlearn.Interactive.lattice_strategy);
      ("greedy split", Joinlearn.Interactive.split_strategy ());
    ]
  in
  List.iter
    (fun (name, strategy) ->
      let costs = ref [] and recovered = ref 0 in
      let trials = 6 in
      for seed = 1 to trials do
        let rng = Core.Prng.create seed in
        let inst = Relational.Generator.pair_instance ~rng () in
        let report =
          Joinlearn.Crowd.run ~rng ~strategy ~price_per_hit:price ~budget
            ~left:inst.left ~right:inst.right ~goal:inst.planted ()
        in
        costs := report.spent :: !costs;
        let space =
          Joinlearn.Signature.space
            ~left_arity:(Relational.Relation.arity inst.left)
            ~right_arity:(Relational.Relation.arity inst.right)
        in
        let goal_mask = Joinlearn.Signature.of_predicate space inst.planted in
        let ok =
          match report.outcome.query with
          | None -> false
          | Some learned ->
              (* Same selected pairs as the goal on the whole instance. *)
              List.for_all
                (fun (it : Joinlearn.Interactive.item) ->
                  Joinlearn.Signature.subset learned it.mask
                  = Joinlearn.Signature.subset goal_mask it.mask)
                (Joinlearn.Interactive.items_of space inst.left inst.right)
        in
        if ok then incr recovered
      done;
      Printf.printf "  %-16s mean cost $%.2f   goal recovered %d/%d\n" name
        (Core.Stats.mean !costs) !recovered trials)
    strategies;
  Printf.printf
    "\nMinimizing interactions = minimizing money: the informed strategies \
     recover the same join for a fraction of the spend.\n"
