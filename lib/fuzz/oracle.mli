(** The differential and metamorphic oracles.

    Each oracle packages a generator, a checkable property, a shrinking
    candidate function and a size measure for one cross-implementation
    invariant — cached ≡ uncached, incremental ≡ batch, parallel ≡
    sequential, parse ∘ print ≡ id, optimized ≡ naive reference.  The
    {!Runner} drives them; nothing here depends on how many iterations run
    or where counterexamples go.

    A check returns [Error reason] on a violated invariant and must be a
    deterministic function of its input: shrinking re-evaluates it on every
    reduction candidate, and [--replay] re-evaluates it on a regenerated
    input. *)

type 'a spec = {
  name : string;  (** CLI identifier, e.g. ["eval-cache"] *)
  about : string;  (** one-line description for [learnq fuzz --list] *)
  generate : Core.Prng.t -> size:int -> 'a;
  check : 'a -> (unit, string) result;
  candidates : 'a -> 'a list;  (** {!Shrink}-style reduction candidates *)
  print : 'a -> string;  (** human rendering for artifacts *)
  size_of : 'a -> int;  (** structural size (nodes), the shrink metric *)
}

type t = Spec : 'a spec -> t  (** existentially packaged *)

val name : t -> string
val about : t -> string

val all : t list
(** Every oracle, in reporting order. *)

val find : string -> t option

val serial : t -> bool
(** Oracles that mutate process-global state (ablation switches, the
    telemetry enable, the in-process daemon) and therefore must not run
    concurrently with other oracles.  The parallel {!Runner} pins these
    to the calling domain; everything else may run on pool workers. *)
