lib/xmltree/parse.ml: Buffer List Printf String Tree
