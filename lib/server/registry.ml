module Journal = Core.Journal
module Budget = Core.Budget
module Error = Core.Error

type config = {
  dir : string;
  sync : Core.Journal.sync;
  tenants : Tenant.t;
  step_fuel : int option;
  step_timeout : float option;
}

type session = {
  tenant : string;
  id : string;
  spec : Engines.spec;
  stepper : Stepper.t;
  path : string;
}

type t = {
  cfg : config;
  sessions : (string, session) Hashtbl.t;
  building : (string, string) Hashtbl.t;  (** key -> tenant: reserved slots *)
  m : Mutex.t;
}

let key ~tenant ~id = tenant ^ "/" ^ id

let valid_name s =
  s <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

(* "." cannot appear in a valid tenant or session name, so
   [tenant ^ "." ^ id] is injective: no two (tenant, id) pairs share a
   journal file, and recovery can split the name back unambiguously.  (A
   "__" separator would be ambiguous — names may contain '_' anywhere.) *)
let journal_path cfg ~tenant ~id =
  Filename.concat cfg.dir (tenant ^ "." ^ id ^ ".journal")

let create cfg =
  (try Unix.mkdir cfg.dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  {
    cfg;
    sessions = Hashtbl.create 64;
    building = Hashtbl.create 8;
    m = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let tenant_count_locked t tenant =
  let live =
    Hashtbl.fold
      (fun _ s n -> if s.tenant = tenant then n + 1 else n)
      t.sessions 0
  in
  Hashtbl.fold
    (fun _ ten n -> if ten = tenant then n + 1 else n)
    t.building live

(* Per-step budget: the tenant's caps override the server-wide defaults. *)
let step_budget t tenant =
  let q = Tenant.find t.cfg.tenants tenant in
  let fuel =
    match q.Tenant.step_fuel with Some f -> Some f | None -> t.cfg.step_fuel
  in
  let timeout =
    match q.Tenant.step_timeout with
    | Some s -> Some s
    | None -> t.cfg.step_timeout
  in
  fun () -> Budget.create ?fuel ?timeout ()

(* Build a stepper over a fresh journal, or by resuming the one already on
   disk (spec must agree with the recorded header).  Runs outside the
   registry lock. *)
let build t ~tenant ~id spec =
  let path = journal_path t.cfg ~tenant ~id in
  let step_budget = step_budget t tenant in
  let fresh () =
    match
      Journal.create_result ~sync:t.cfg.sync ~path (Engines.header_of_spec spec)
    with
    | Error _ as e -> e
    | Ok j -> (
        match Engines.make ~journal:j ~step_budget spec with
        | Ok stepper -> Ok { tenant; id; spec; stepper; path }
        | Error _ as e ->
            Journal.close j;
            (try Sys.remove path with Sys_error _ -> ());
            e)
  in
  if not (Sys.file_exists path) then fresh ()
  else
    match Journal.resume ~sync:t.cfg.sync ~path () with
    | Error _ as e -> e
    | Ok (j, recovered) -> (
        let recorded =
          match recovered.Journal.header with
          | Some h -> Engines.spec_of_config h.Journal.config
          | None -> Error "journal has no header"
        in
        match recorded with
        | Error msg ->
            Journal.close j;
            Error
              (Error.invalid_input ~what:"journal"
                 (Printf.sprintf "%s: %s" path msg))
        | Ok recorded when recorded <> spec ->
            Journal.close j;
            Error
              (Error.invalid_input ~what:"session"
                 (Printf.sprintf
                    "session %s exists with a different spec (%s)" id
                    (Engines.config_of_spec recorded)))
        | Ok _ -> (
            match
              Engines.make ~journal:j ~resume:recovered.Journal.events
                ~step_budget spec
            with
            | Ok stepper -> Ok { tenant; id; spec; stepper; path }
            | Error _ as e ->
                Journal.close j;
                e))

let create_session t ~tenant ~id spec =
  if not (valid_name tenant && valid_name id) then
    Error
      (Error.invalid_input ~what:"session"
         "tenant and session ids must match [A-Za-z0-9_-]+")
  else
    let k = key ~tenant ~id in
    let reserve () =
      with_lock t (fun () ->
          match Hashtbl.find_opt t.sessions k with
          | Some s ->
              if s.spec <> spec then
                Error
                  (`Err
                     (Error.invalid_input ~what:"session"
                        (Printf.sprintf
                           "session %s exists with a different spec (%s)" id
                           (Engines.config_of_spec s.spec))))
              else Error (`Existing (s.stepper.Stepper.view ()))
          | None ->
              if Hashtbl.mem t.building k then
                Error
                  (`Err
                     (Error.invalid_input ~what:"session"
                        (Printf.sprintf "session %s is being created" id)))
              else
                let q = Tenant.find t.cfg.tenants tenant in
                if tenant_count_locked t tenant >= q.Tenant.max_sessions then
                  Error
                    (`Err
                       (Error.over_quota ~tenant ~what:"max_sessions"
                          ~limit:q.Tenant.max_sessions))
                else begin
                  Hashtbl.add t.building k tenant;
                  Ok ()
                end)
    in
    match reserve () with
    | Error (`Existing view) -> Ok view
    | Error (`Err e) -> Error e
    | Ok () -> (
        let release () =
          with_lock t (fun () -> Hashtbl.remove t.building k)
        in
        match build t ~tenant ~id spec with
        | Ok s ->
            with_lock t (fun () ->
                Hashtbl.remove t.building k;
                Hashtbl.replace t.sessions k s);
            Ok (s.stepper.Stepper.view ())
        | Error _ as e ->
            release ();
            e
        | exception exn ->
            release ();
            raise exn)

let find t ~tenant ~id =
  with_lock t (fun () ->
      Option.map
        (fun s -> s.stepper)
        (Hashtbl.find_opt t.sessions (key ~tenant ~id)))

let delete t ~tenant ~id =
  let removed =
    with_lock t (fun () ->
        let k = key ~tenant ~id in
        match Hashtbl.find_opt t.sessions k with
        | None -> None
        | Some s ->
            Hashtbl.remove t.sessions k;
            Some s)
  in
  match removed with
  | None -> false
  | Some s ->
      s.stepper.Stepper.close ();
      (try Sys.remove s.path with Sys_error _ -> ());
      true

let recover_all t ~pool =
  let files =
    match Sys.readdir t.cfg.dir with
    | files ->
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".journal")
        |> List.sort compare
    | exception Sys_error _ -> []
  in
  let parse_name f =
    let base = Filename.chop_suffix f ".journal" in
    (* tenant.id — '.' is not a name character, so the first '.' is the
       separator and the mapping round-trips exactly. *)
    match String.index_opt base '.' with
    | None -> None
    | Some i ->
        let tenant = String.sub base 0 i in
        let id = String.sub base (i + 1) (String.length base - i - 1) in
        if valid_name tenant && valid_name id then Some (tenant, id)
        else None
  in
  let todo =
    List.filter_map
      (fun f ->
        match parse_name f with
        | None -> None
        | Some (tenant, id) ->
            let k = key ~tenant ~id in
            if with_lock t (fun () -> Hashtbl.mem t.sessions k) then None
            else Some (f, tenant, id))
      files
  in
  (* Replay is CPU-bound and per-file independent: one pool lane per
     journal.  Each lane only reads its own file and builds its own
     stepper; table insertion happens afterwards on the calling thread. *)
  let results =
    Core.Pool.map_list pool
      (fun (f, tenant, id) ->
        let path = journal_path t.cfg ~tenant ~id in
        let r =
          match Journal.resume ~sync:t.cfg.sync ~path () with
          | Error e -> Error e
          | Ok (j, recovered) -> (
              let spec =
                match recovered.Journal.header with
                | Some h -> Engines.spec_of_config h.Journal.config
                | None -> Error "journal has no header"
              in
              match spec with
              | Error msg ->
                  Journal.close j;
                  Error (Error.invalid_input ~what:"journal" msg)
              | Ok spec -> (
                  match
                    Engines.make ~journal:j ~resume:recovered.Journal.events
                      ~step_budget:(step_budget t tenant) spec
                  with
                  | Ok stepper -> Ok { tenant; id; spec; stepper; path }
                  | Error _ as e ->
                      Journal.close j;
                      e))
        in
        (f, r))
      todo
  in
  List.fold_left
    (fun (n, errs) (f, r) ->
      match r with
      | Ok s ->
          with_lock t (fun () ->
              Hashtbl.replace t.sessions (key ~tenant:s.tenant ~id:s.id) s);
          (n + 1, errs)
      | Error e -> (n, (f, e) :: errs))
    (0, []) results

let snapshot t = with_lock t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])

let drain t = List.iter (fun s -> s.stepper.Stepper.close ()) (snapshot t)
let crash t = List.iter (fun s -> s.stepper.Stepper.abort ()) (snapshot t)
let count t = with_lock t (fun () -> Hashtbl.length t.sessions)
let tenant_count t tenant = with_lock t (fun () -> tenant_count_locked t tenant)

let fold t ~init ~f =
  List.fold_left
    (fun acc s -> f acc ~tenant:s.tenant ~id:s.id s.stepper)
    init (snapshot t)
