(** An XMark-style workload: seeded generation of auction-site documents
    following the structure of the XMark DTD (Schmidt et al., VLDB 2002),
    and the disjunctive multiplicity schema capturing it.

    The paper leans on XMark twice: the proposed schema formalism "can
    express the DTD from XMark", and the twig-learning evaluation runs over
    XMark-generated documents with XPathMark queries.  The original
    generator is an external C artifact; this module reproduces the
    document {e shape} — sites with regions/items, people with nested
    addresses and profiles, open and closed auctions with bidders and
    annotations, categories with a category graph — at laptop scale, keyed
    by a deterministic seed (DESIGN.md records the substitution). *)

val generate : ?scale:float -> seed:int -> unit -> Xmltree.Tree.t
(** [scale] (default 1.0) multiplies entity counts (≈ 200 nodes at 1.0,
    growing linearly). *)

val schema : Uschema.Schema.t
(** The DMS of the generated documents; {!generate} always validates
    against it (tested).  Note the genuinely disjunctive rule for
    [description] ([text | parlist]). *)

val dtd : Uschema.Dtd.t
(** The ordered DTD of the generated documents (the generator emits children
    in a fixed order).  Experiment E10 checks the paper's claim that the DMS
    captures this DTD: on generated documents the two validators agree, and
    under sibling permutation only the DMS keeps accepting — the
    order-obliviousness that motivates schemas for unordered XML. *)

val keywords : string list
(** The keyword vocabulary used in text content. *)
