examples/crowd_join.mli:
