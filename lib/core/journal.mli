(** The write-ahead session journal: crash durability for interactive
    learning sessions.

    The paper's Section 3 protocol is a long-running loop of questions and
    answers, each answer bought from a (crowd) user; losing them to a process
    crash means paying for them again.  In the spirit of ARIES-style
    write-ahead logging, a journal records the session {e before} the effects
    happen: a header (seed and configuration, so the run is reproducible),
    then one record per question asked and per answer received.

    {2 On-disk format}

    An 8-byte magic string ["LQJRNL1\n"] followed by records.  Each record is

    {v [length : 4 bytes LE] [crc32 : 4 bytes LE] [payload : length bytes] v}

    where the CRC-32 (polynomial 0xEDB88320) covers the payload.  A record is
    written with a single [write], so a crash leaves at most one torn record
    at the physical tail (under {!Batch}, at most one torn {e group}).
    {!recover} therefore treats a record whose bytes run out before [length]
    is satisfied as a torn tail and drops it silently, while a record that is
    fully present but fails its CRC is {e corruption} and is rejected with a
    positioned {!Error.t}.

    The header carries a trailing format-version field ([v=2] since the
    storage PR); version-1 journals (no checkpoints, bare-pid locks) still
    parse and resume.

    {2 Checkpoints and compaction}

    A {!checkpoint} record snapshots the whole session accumulator —
    counters, answered keys, and an opaque engine-encoded state — so
    {!resume} can restore from the last checkpoint and replay only the tail
    instead of every record since birth.  {!compact} then rewrites the
    journal as [header + checkpoint] via write-aside + atomic rename: the
    old journal survives untouched until the new one is durable, so a crash
    at any instant leaves one complete journal, never a hybrid.

    {2 Storage failures}

    All writes go through a {!Vfs.t} (defaulting to the passthrough
    backend).  A disk failure (ENOSPC, EIO, short write) raises {!Io}
    carrying a typed [Error.Storage]; the journal first truncates the file
    back to the last complete frame, so the on-disk image stays a valid
    prefix and the append can be retried once the disk recovers.

    {2 Fsync policy}

    Per-append [fsync] is the strongest guarantee but dominates the cost of a
    fast learner (BENCH_PR2 measured 6.8× on the twig learn path).  {!sync}
    trades durability for throughput: {!Always} fsyncs every record, {!Batch}
    group-commits (one write + fsync per 8 records, and at every session
    milestone), {!Off} leaves flushing to the OS.  The chosen policy is
    recorded in the header so {!recover} can report what guarantee the
    journal was written under.

    {2 Writer mutual exclusion}

    Two processes appending to one journal would interleave frames into
    corruption, so {!create_result} and {!resume} take a sidecar lock file
    ([path ^ ".lock"], created atomically via write-aside + [link(2)]),
    stamped with the owner's [pid:starttime] — not a bare pid, because pids
    are recycled: same pid but different [/proc/<pid>/stat] starttime means
    the recorded holder died and its pid was reborn, so the lock is stale
    and is stolen.  When the pid is alive and no stamp evidence says
    otherwise (old bare-pid locks, no /proc), stealing is refused with a
    typed [Journal_locked].  {!close} (and {!abort}) release the lock. *)

type header = {
  seed : int;  (** the PRNG seed the session ran under *)
  engine : string;  (** which learner ("learn-twig", "learn-join", …) *)
  config : string;  (** free-form parameter line; checked on resume *)
}

type sync =
  | Always  (** fsync every append: lose at most the in-flight record *)
  | Batch
      (** group commit: buffer up to 8 records per write+fsync; a crash loses
          at most the open group.  [Completed] and {!close} force a flush. *)
  | Off  (** never fsync: durability left to the OS page cache *)

val sync_to_string : sync -> string
val sync_of_string : string -> sync option

type checkpoint = {
  ck_qid : int;  (** questions asked when the snapshot was taken *)
  ck_questions : int;  (** labels actually received *)
  ck_pruned : int;
  ck_refused : int;
  ck_answered : string list;  (** answered item keys, oldest first *)
  ck_state : string;  (** engine-encoded accumulator (opaque here) *)
}

type event =
  | Asked of string  (** an encoded item was put to the oracle *)
  | Answered of string * Flaky.reply  (** …and this reply came back *)
  | Checkpoint of checkpoint
      (** a full accumulator snapshot; everything before it is superseded *)
  | Completed  (** the session ended with no open item *)

exception Io of Error.t
(** Raised by {!append}/{!flush} when the disk refuses a write; the payload
    is always an [Error.Storage].  The journal has already truncated back
    to its last complete frame (or marked itself broken if it could not). *)

type t
(** An open journal writer. *)

val create_result :
  ?sync:sync -> ?vfs:Vfs.t -> path:string -> header -> (t, Error.t) result
(** Starts a fresh journal at [path] (truncating any existing file) and
    writes the header record — durable immediately (unless [sync] is {!Off}),
    since resume depends on it.  [sync] defaults to {!Always}, [vfs] to the
    passthrough backend.  Fails with [Journal_locked] when a live process
    holds the journal's lock file, or [Storage] when the disk refuses. *)

val create : ?sync:sync -> ?vfs:Vfs.t -> path:string -> header -> t
(** {!create_result}, raising [Invalid_argument] on failure — for callers
    (tests, benches) that own their paths outright. *)

val append : t -> event -> unit
(** Appends one record under the journal's {!sync} policy.
    @raise Invalid_argument on a closed journal.
    @raise Io when the disk refuses the write. *)

val append_checkpoint : t -> checkpoint -> unit
(** {!append} a checkpoint and force a flush: a checkpoint is a durability
    milestone (compaction may discard history behind it).
    @raise Io when the disk refuses the write. *)

val compact : t -> checkpoint -> (unit, Error.t) result
(** Atomically rewrite the journal as [header + ck] (write-aside, fsync,
    rename).  On success the writer continues into the new file and any
    buffered records are dropped as subsumed; on failure the old journal and
    the writer are untouched.  The caller must ensure [ck] reflects every
    event already appended, including buffered ones. *)

val flush : t -> unit
(** Forces any buffered {!Batch} records to disk (write + fsync).  No-op when
    nothing is pending or under {!Always}/{!Off}.
    @raise Io when the disk refuses the write (the buffer is kept for
    retry). *)

val close : t -> unit
(** Flushes pending records, closes the descriptor, and releases the
    journal's lock; idempotent.  May raise {!Io} if the final flush fails —
    the descriptor and lock are released regardless. *)

val abort : t -> unit
(** Simulated crash, for chaos harnesses: closes the descriptor {e without}
    flushing — buffered {!Batch} records are lost, exactly as a kill -9
    would lose them.  The lock is released (it belongs to this still-live
    process; after a real crash the next opener steals it instead).
    Idempotent with {!close}. *)

type recovered = {
  header : header option;
      (** [None] when even the header record was lost to truncation. *)
  recorded_sync : sync;
      (** the fsync policy the journal was written under ({!Always} for
          journals predating the policy field) *)
  version : int;
      (** header format version (1 for journals predating the field) *)
  events : event list;  (** the surviving prefix, in append order *)
  valid_bytes : int;  (** file offset just past the last whole record *)
  dropped_bytes : int;  (** torn-tail bytes discarded after [valid_bytes] *)
}

val parse : source:string -> string -> (recovered, Error.t) result
(** Pure parser over raw journal bytes ([source] names them in errors).  Any
    byte-truncation of a valid journal parses to the surviving prefix; a CRC
    mismatch or an undecodable payload in a complete record is an error
    positioned at the record's offset. *)

val recover : path:string -> (recovered, Error.t) result
(** Reads and {!parse}s the file at [path]. *)

val resume :
  ?sync:sync -> ?vfs:Vfs.t -> path:string -> unit -> (t * recovered, Error.t) result
(** {!recover} under the writer lock, then reopen [path] for appending: the
    torn tail (if any) is truncated away and subsequent {!append}s continue
    the valid prefix.  Continues under the journal's recorded policy unless
    [sync] overrides it.  Fails when the journal has no header (nothing to
    resume) or when a live process holds the lock ([Journal_locked]). *)

val answered : recovered -> (string * Flaky.reply) list
(** The [Answered] events of the surviving prefix, in order — what a learner
    replays to rebuild its state. *)

val split_checkpoint : recovered -> checkpoint option * event list
(** The last checkpoint (if any) and the events after it: restore the
    snapshot, replay only the tail.  With no checkpoint the full event list
    comes back — version-1 journals resume exactly as before. *)

val crc32 : string -> int
(** The checksum used by the record format (exposed for tests). *)

val lock_path_of : string -> string
(** The sidecar lock path for a journal path (exposed for quarantine
    cleanup and tests). *)
