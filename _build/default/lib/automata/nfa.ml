type t = {
  state_count : int;
  start : int;
  final : int;
  trans : (int * string option * int) list;
}

let of_regex regex =
  let counter = ref 0 in
  let fresh () =
    let s = !counter in
    incr counter;
    s
  in
  (* Returns (start, final, transitions) for each subexpression. *)
  let rec build = function
    | Regex.Empty ->
        let s = fresh () and f = fresh () in
        (s, f, [])
    | Regex.Eps ->
        let s = fresh () and f = fresh () in
        (s, f, [ (s, None, f) ])
    | Regex.Sym a ->
        let s = fresh () and f = fresh () in
        (s, f, [ (s, Some a, f) ])
    | Regex.Alt (a, b) ->
        let sa, fa, ta = build a and sb, fb, tb = build b in
        let s = fresh () and f = fresh () in
        ( s,
          f,
          ((s, None, sa) :: (s, None, sb) :: (fa, None, f) :: (fb, None, f)
          :: ta)
          @ tb )
    | Regex.Cat (a, b) ->
        let sa, fa, ta = build a and sb, fb, tb = build b in
        (sa, fb, ((fa, None, sb) :: ta) @ tb)
    | Regex.Star a ->
        let sa, fa, ta = build a in
        let s = fresh () and f = fresh () in
        ( s,
          f,
          (s, None, sa) :: (s, None, f) :: (fa, None, sa) :: (fa, None, f)
          :: ta )
  in
  let start, final, trans = build (Regex.simplify regex) in
  { state_count = !counter; start; final; trans }

let alphabet nfa =
  let module S = Set.Make (String) in
  List.fold_left
    (fun acc (_, l, _) ->
      match l with Some s -> S.add s acc | None -> acc)
    S.empty nfa.trans
  |> S.elements

let eps_closure nfa states =
  let module IS = Set.Make (Int) in
  let rec go frontier seen =
    match frontier with
    | [] -> seen
    | s :: rest ->
        let successors =
          List.filter_map
            (fun (src, l, dst) ->
              if src = s && l = None && not (IS.mem dst seen) then Some dst
              else None)
            nfa.trans
        in
        go (successors @ rest)
          (List.fold_left (fun acc d -> IS.add d acc) seen successors)
  in
  IS.elements (go states (IS.of_list states))

let step nfa states sym =
  let module IS = Set.Make (Int) in
  let direct =
    List.filter_map
      (fun (src, l, dst) ->
        if List.mem src states && l = Some sym then Some dst else None)
      nfa.trans
  in
  eps_closure nfa (IS.elements (IS.of_list direct))

let accepts nfa word =
  let final_set =
    List.fold_left
      (fun states sym -> step nfa states sym)
      (eps_closure nfa [ nfa.start ])
      word
  in
  List.mem nfa.final final_set
