examples/geo_paths.mli:
