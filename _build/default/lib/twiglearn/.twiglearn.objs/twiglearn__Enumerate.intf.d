lib/twiglearn/enumerate.mli: Seq Twig
