lib/exchange/mapping.ml: Core Joinlearn List Pathlearn Publish Rdf Relational Twig Twiglearn Xmltree
