lib/benchkit/xmark.mli: Uschema Xmltree
