open Twig.Query

let axes = [ Child; Descendant ]

let tests alphabet = Wildcard :: List.map (fun l -> Label l) alphabet

(* Filter shapes of the given depth: chains test / test / ... with an axis at
   each level.  Depth 1 gives single-node filters. *)
let rec filter_shapes alphabet depth =
  if depth <= 0 then []
  else
    let shallower = filter_shapes alphabet (depth - 1) in
    List.concat_map
      (fun t ->
        { ftest = t; fsubs = [] }
        :: List.concat_map
             (fun a ->
               List.map
                 (fun sub -> { ftest = t; fsubs = [ (a, sub) ] })
                 shallower)
             axes)
      (tests alphabet)

(* Subsets of at most [k] filters, each paired with an axis. *)
let filter_sets alphabet ~filter_depth ~max_filters_per_node =
  let shapes = filter_shapes alphabet filter_depth in
  let edges =
    List.concat_map (fun a -> List.map (fun f -> (a, f)) shapes) axes
  in
  let rec subsets k = function
    | [] -> [ [] ]
    | e :: rest ->
        let without = subsets k rest in
        if k = 0 then without
        else without @ List.map (fun s -> e :: s) (subsets (k - 1) rest)
  in
  subsets max_filters_per_node edges

let m_candidates =
  Core.Telemetry.Metrics.counter "learnq.twiglearn.candidates"

let queries ?budget ?(filter_depth = 1) ?(max_filters_per_node = 1) ~alphabet
    ~max_nodes () =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  let fsets = filter_sets alphabet ~filter_depth ~max_filters_per_node in
  let step_choices =
    List.concat_map
      (fun axis ->
        List.concat_map
          (fun test ->
            List.map (fun filters -> { axis; test; filters }) fsets)
          (tests alphabet))
      axes
  in
  (* Depth-first extension of spines while the node budget allows.  One fuel
     tick per candidate produced keeps the exponential enumeration under the
     caller's resource budget. *)
  let rec extend prefix nodes_left () =
    if nodes_left <= 0 then Seq.Nil
    else
      let with_step s =
        let cost = 1 + List.fold_left (fun acc (_, f) -> acc + filter_size f) 0 s.filters in
        if cost > nodes_left then None
        else begin
          Core.Budget.tick budget;
          Core.Telemetry.Metrics.incr m_candidates;
          let q = List.rev (s :: prefix) in
          Some (Seq.cons q (extend (s :: prefix) (nodes_left - cost)))
        end
      in
      List.to_seq step_choices
      |> Seq.filter_map with_step
      |> Seq.concat
      |> fun s -> s ()
  in
  extend [] max_nodes

let count ?budget ?filter_depth ?max_filters_per_node ~alphabet ~max_nodes () =
  Seq.fold_left
    (fun acc _ -> acc + 1)
    0
    (queries ?budget ?filter_depth ?max_filters_per_node ~alphabet ~max_nodes ())
