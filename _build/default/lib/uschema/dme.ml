type clause = (string * Multiplicity.t) list
type t = clause list

module Labels = Core.Multiset.Make (String)

let clause atoms =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) atoms
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Dme.clause: duplicate label " ^ a)
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let empty_clause = []

let make = function
  | [] -> invalid_arg "Dme.make: a DME needs at least one clause"
  | clauses -> clauses

let disjunction_free = function [ _ ] -> true | _ -> false

let satisfies_clause c w =
  List.for_all (fun (l, m) -> Multiplicity.satisfies m (Labels.count l w)) c
  && List.for_all (fun l -> List.mem_assoc l c) (Labels.support w)

let satisfies dme w = List.exists (fun c -> satisfies_clause c w) dme

let alphabet dme =
  let module S = Set.Make (String) in
  List.fold_left
    (fun acc c -> List.fold_left (fun acc (l, _) -> S.add l acc) acc c)
    S.empty dme
  |> S.elements

let size dme = List.fold_left (fun acc c -> acc + List.length c) 0 dme

let parse input =
  let parse_atom token =
    let n = String.length token in
    if n = 0 then invalid_arg "Dme.parse: empty atom"
    else
      match Multiplicity.parse_suffix token.[n - 1] with
      | Some m when n > 1 -> (String.sub token 0 (n - 1), m)
      | Some _ -> invalid_arg "Dme.parse: bare multiplicity"
      | None -> (token, Multiplicity.One)
  in
  let parse_clause s =
    let tokens =
      String.split_on_char ' ' (String.trim s)
      |> List.filter (fun t -> t <> "")
    in
    match tokens with
    | [ "eps" ] -> empty_clause
    | [] -> invalid_arg "Dme.parse: empty clause (use eps)"
    | atoms -> clause (List.map parse_atom atoms)
  in
  match String.split_on_char '|' input with
  | [] -> invalid_arg "Dme.parse: empty expression"
  | parts -> make (List.map parse_clause parts)

let pp_clause ppf = function
  | [] -> Format.pp_print_string ppf "eps"
  | atoms ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
        (fun ppf (l, m) -> Format.fprintf ppf "%s%a" l Multiplicity.pp m)
        ppf atoms

let pp ppf dme =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
    pp_clause ppf dme

let to_string dme = Format.asprintf "%a" pp dme

let equal_clause c1 c2 =
  List.equal (fun (l1, m1) (l2, m2) -> String.equal l1 l2 && m1 = m2) c1 c2

let equal d1 d2 =
  (* Clause order is irrelevant. *)
  let leq a b = List.for_all (fun c -> List.exists (equal_clause c) b) a in
  leq d1 d2 && leq d2 d1
