type t = Int of int | Str of string

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let hash = function Int x -> Hashtbl.hash (0, x) | Str s -> Hashtbl.hash (1, s)

let of_string s =
  match int_of_string_opt s with Some i -> Int i | None -> Str s

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.pp_print_string ppf s

let to_string = function Int i -> string_of_int i | Str s -> s
