type t = {
  title : string;
  header : string list;
  mutable rows : string list list;  (** reversed *)
}

let make ~title ~header = { title; header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length t.header)
      rows
  in
  ignore all;
  let buf = Buffer.create 1024 in
  let pad c w = c ^ String.make (w - String.length c) ' ' in
  let line row =
    Buffer.add_string buf "| ";
    Buffer.add_string buf
      (String.concat " | " (List.map2 pad row widths));
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_string buf "+";
    List.iter
      (fun w -> Buffer.add_string buf (String.make (w + 2) '-' ^ "+"))
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  line t.header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(digits = 2) f = Printf.sprintf "%.*f" digits f
let cell_pct f = Printf.sprintf "%.1f%%" (100. *. f)
