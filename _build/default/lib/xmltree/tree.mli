(** The XML data model used throughout the repository.

    Following the twig-query literature the paper builds on (Staworko &
    Wieczorek, "Learning twig and path queries"), a document is an unranked
    tree of labeled nodes.  Twig queries test element labels and
    parent/ancestor structure only, so:

    - attributes are modeled as children labeled ["@name"] whose value (if
      any) appears as a leaf child;
    - text content is modeled as a leaf child whose label is the text
      prefixed with ['#'] (e.g. ["#Tampa"]), so values survive shredding and
      publishing ({!Exchange}) without an extra node kind;
    - sibling order is preserved by the representation but ignored by twig
      semantics and by the unordered schemas of {!Uschema} — exactly the
      design motivation for disjunctive multiplicity schemas in the paper.

    Nodes are addressed by {!type:path}: the list of child indices from the
    root.  Paths are stable node identifiers for a fixed document and are the
    currency of query answers and annotated examples. *)

type t = { label : string; children : t list }

type path = int list
(** Child indices from the root; [[]] addresses the root itself. *)

val node : string -> t list -> t
val leaf : string -> t

val text : string -> t
(** [text s] is a leaf labeled ["#" ^ s], the text-node encoding. *)

val is_text : t -> bool
val text_value : t -> string option
(** [text_value n] strips the ['#'] prefix when [n] is a text node. *)

val element_children : t -> t list
(** Children that are not text nodes. *)

val value_of : t -> string option
(** The concatenated text content directly under [n], if any — used when
    shredding XML into relational tuples. *)

val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** 1 for a leaf. *)

val labels : t -> string list
(** Distinct labels, sorted. *)

val node_at : t -> path -> t option
val parent_path : path -> path option

val all_paths : t -> path list
(** Every node's path, in preorder (root first). *)

val paths_with_label : t -> string -> path list

val fold : (path -> t -> 'a -> 'a) -> t -> 'a -> 'a
(** Preorder fold over (path, node). *)

val descendant_paths : t -> path -> path list
(** Paths of proper descendants of the node at [path] (empty if absent). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val equal_unordered : t -> t -> bool
(** Equality up to sibling reordering at every node. *)

val pp : Format.formatter -> t -> unit
(** Compact single-line rendering, e.g. [a(b,c(d))]. *)

val to_string : t -> string

val pp_path : Format.formatter -> path -> unit
