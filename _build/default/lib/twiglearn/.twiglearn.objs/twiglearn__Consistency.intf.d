lib/twiglearn/consistency.mli: Core Twig Xmltree
