open Query

let merge_test t1 t2 = if tests_equal t1 t2 then t1 else Wildcard
let merge_axis a1 a2 = match (a1, a2) with Child, Child -> Child | _ -> Descendant

(* Ablation knobs (benchmarked by experiment E13): [label_guided] restricts
   the filter product to same-root-test groups; [rescue] re-introduces
   invariant tests lost to depth mismatches behind a descendant edge.  Both
   on is the production configuration. *)
type mode = { label_guided : bool; rescue : bool }

let default_mode = { label_guided = true; rescue = true }

let rec lgg_filter_mode mode f1 f2 =
  {
    ftest = merge_test f1.ftest f2.ftest;
    fsubs = merge_edges ~mode ~max_filters:32 f1.fsubs f2.fsubs;
  }

(* Keep only maximal (most specific) edges: an edge implied by another kept
   edge is redundant.  Process in decreasing size so the most specific
   representatives are kept first. *)
and prune_maximal ~max_filters edges =
  let by_size =
    List.sort
      (fun (_, f1) (_, f2) -> compare (filter_size f2) (filter_size f1))
      edges
  in
  let keep =
    List.fold_left
      (fun kept e ->
        if List.exists (fun e' -> Contain.filter_subsumed e' e) kept then kept
        else e :: kept)
      [] by_size
  in
  let keep = List.rev keep in
  (* Invariant: [keep] preserves [by_size]'s decreasing-size order — the fold
     only drops elements and the reversal undoes the prepending — so capping
     by specificity is a prefix take, no second sort. *)
  if List.length keep <= max_filters then keep
  else List.filteri (fun i _ -> i < max_filters) keep

(* Label-guided product: only filters sharing a root test merge, and each
   shared test contributes a single edge — the LGG of every same-test filter
   on both sides.  This keeps learned queries duplicate-free (at most one
   filter per child label), which is what lets a handful of examples wash
   out incidental structure; conjunctions of per-example shapes would
   otherwise accumulate and never generalize.  Soundness: the group LGG is
   implied by each member, so any node satisfying one side's filters
   satisfies every merged edge. *)
and merge_edges ~mode ~max_filters e1s e2s =
  if not mode.label_guided then
    (* Naive product: every cross pair merges.  Sound, but conjunctions of
       per-example shapes accumulate — kept for the E13 ablation. *)
    let products =
      List.concat_map
        (fun (a1, g1) ->
          List.map
            (fun (a2, g2) -> (merge_axis a1 a2, lgg_filter_mode mode g1 g2))
            e2s)
        e1s
    in
    prune_maximal ~max_filters products
  else
  let tests_of es =
    List.fold_left
      (fun acc (_, f) -> if List.mem f.ftest acc then acc else f.ftest :: acc)
      [] es
  in
  let shared =
    List.filter
      (fun t -> List.exists (fun (_, f) -> tests_equal f.ftest t) e2s)
      (tests_of e1s)
  in
  let merged =
    List.map
      (fun t ->
        let members es =
          List.filter (fun (_, f) -> tests_equal f.ftest t) es
        in
        let group = members e1s @ members e2s in
        let axis =
          if List.for_all (fun (a, _) -> a = Child) group then Child
          else Descendant
        in
        let filter =
          match group with
          | (_, first) :: rest ->
              List.fold_left
                (fun acc (_, g) -> lgg_filter_mode mode acc g)
                first rest
          | [] -> assert false
        in
        (axis, filter))
      shared
  in
  (* Descendant rescue: a test buried at different depths on the two sides
     (e.g. keyword under text vs. under parlist/listitem/text) still has a
     common pattern — reachable by a descendant edge.  Collect, for each
     labeled test present in the subfilters of both sides but not merged at
     the top, the LGG of all its occurrences. *)
  let rec subfilters f = f :: List.concat_map (fun (_, g) -> subfilters g) f.fsubs in
  let occurs t f = List.exists (fun g -> tests_equal g.ftest t) (subfilters f) in
  (* Only tests present in EVERY edge of BOTH sides qualify: such a test is
     an invariant of each branch, so its loss at the top merge (different
     depths on the two sides, as with keyword under text vs. under
     parlist/listitem/text) is genuine structure worth keeping behind a
     descendant edge.  Tests present only in some branches are correctly
     generalized away. *)
  let invariant_tests =
    match e1s with
    | [] -> []
    | (_, f0) :: _ ->
        List.filter_map
          (fun (g : filter) ->
            match g.ftest with Wildcard -> None | t -> Some t)
          (subfilters f0)
        |> List.sort_uniq Stdlib.compare
        |> List.filter (fun t ->
               (not (List.exists (tests_equal t) shared))
               && e2s <> []
               && List.for_all (fun (_, f) -> occurs t f) e1s
               && List.for_all (fun (_, f) -> occurs t f) e2s)
  in
  let rescued =
    if not mode.rescue then []
    else
      List.map
        (fun t ->
          let group =
            List.concat_map (fun (_, f) -> subfilters f) (e1s @ e2s)
            |> List.filter (fun g -> tests_equal g.ftest t)
          in
          let filter =
            match group with
            | first :: rest ->
                List.fold_left (fun acc g -> lgg_filter_mode mode acc g) first rest
            | [] -> assert false
          in
          (Descendant, filter))
        invariant_tests
  in
  prune_maximal ~max_filters (merged @ rescued)

let lgg_filter f1 f2 = lgg_filter_mode default_mode f1 f2

let merge_filters ~max_filters e1s e2s =
  merge_edges ~mode:default_mode ~max_filters e1s e2s

(* ------------------------------------------------------------------ *)
(* Spine alignment                                                     *)
(* ------------------------------------------------------------------ *)

let node_score s1 s2 =
  match (s1.test, s2.test) with
  | Label a, Label b when String.equal a b -> 10
  | _ -> 1

let neg_inf = min_int / 2

let lgg ?(label_guided = true) ?(rescue = true) ?(max_filters = 32) (q1 : t)
    (q2 : t) : t =
  let mode = { label_guided; rescue } in
  let a1 = Array.of_list q1 and a2 = Array.of_list q2 in
  let m = Array.length a1 and n = Array.length a2 in
  if m = 0 || n = 0 then invalid_arg "Lgg.lgg: empty query";
  (* best.(i).(j): score of the best alignment of the suffixes with (i, j)
     aligned and ending at (m-1, n-1); next.(i).(j): chosen successor. *)
  let best = Array.make_matrix m n neg_inf in
  let next = Array.make_matrix m n None in
  let edge_score (i, j) (i', j') =
    if i' = i + 1 && j' = j + 1 && a1.(i').axis = Child && a2.(j').axis = Child
    then 3
    else 0
  in
  for i = m - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i = m - 1 && j = n - 1 then best.(i).(j) <- node_score a1.(i) a2.(j)
      else if i = m - 1 || j = n - 1 then best.(i).(j) <- neg_inf
      else begin
        let here = node_score a1.(i) a2.(j) in
        for i' = i + 1 to m - 1 do
          for j' = j + 1 to n - 1 do
            if best.(i').(j') > neg_inf then begin
              let candidate =
                here + edge_score (i, j) (i', j') + best.(i').(j')
              in
              if candidate > best.(i).(j) then begin
                best.(i).(j) <- candidate;
                next.(i).(j) <- Some (i', j')
              end
            end
          done
        done
      end
    done
  done;
  (* Choose the start pair: (0,0) with a child virtual edge is rewarded when
     both inputs are root-anchored. *)
  let start = ref None and start_score = ref neg_inf in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if best.(i).(j) > neg_inf then begin
        let root_bonus =
          if i = 0 && j = 0 && a1.(0).axis = Child && a2.(0).axis = Child
          then 3
          else 0
        in
        let s = root_bonus + best.(i).(j) in
        if s > !start_score then begin
          start_score := s;
          start := Some (i, j)
        end
      end
    done
  done;
  let i0, j0 =
    match !start with Some p -> p | None -> assert false
    (* (m-1, n-1) is always feasible *)
  in
  (* Reconstruct the alignment and emit merged steps. *)
  let rec emit (i, j) ~first acc =
    let axis =
      if first then
        if i = 0 && j = 0 && a1.(0).axis = Child && a2.(0).axis = Child then
          Child
        else Descendant
      else
        match acc with
        | (pi, pj) :: _ ->
            if
              i = pi + 1 && j = pj + 1 && a1.(i).axis = Child
              && a2.(j).axis = Child
            then Child
            else Descendant
        | [] -> assert false
    in
    let step =
      {
        axis;
        test = merge_test a1.(i).test a2.(j).test;
        filters = merge_edges ~mode ~max_filters a1.(i).filters a2.(j).filters;
      }
    in
    match next.(i).(j) with
    | None -> [ step ]
    | Some (i', j') -> step :: emit (i', j') ~first:false ((i, j) :: acc)
  in
  let merged = emit (i0, j0) ~first:true [] in
  anchor merged

let lgg_all ?label_guided ?rescue ?(max_filters = 32) = function
  | [] -> None
  | q :: rest ->
      Some
        (List.fold_left
           (fun acc q' -> lgg ?label_guided ?rescue ~max_filters acc q')
           q rest)

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)
(* ------------------------------------------------------------------ *)

(* The spine below step [i], viewed as a filter: any document node matched
   at step [i] necessarily has this filter satisfied by the embedding
   witness, so query filters implied by it are redundant. *)
let rec spine_as_filter = function
  | [] -> None
  | (s : step) :: rest -> (
      let sub_edges = s.filters in
      match spine_as_filter rest with
      | None -> Some { ftest = s.test; fsubs = sub_edges }
      | Some below ->
          let below_axis =
            match rest with [] -> Child | next :: _ -> next.axis
          in
          Some { ftest = s.test; fsubs = sub_edges @ [ (below_axis, below) ] })

let rec minimize_filter f =
  let subs = List.map (fun (a, g) -> (a, minimize_filter g)) f.fsubs in
  { f with fsubs = prune_maximal ~max_filters:max_int subs }

let minimize (q : t) : t =
  (* No attrs: they would be computed eagerly on the disabled path, and
     minimize runs once per lgg — the hottest span in the repo. *)
  Core.Telemetry.with_span "twig.contain.minimize" @@ fun () ->
  let rec go = function
    | [] -> []
    | (s : step) :: rest ->
        let filters = List.map (fun (a, f) -> (a, minimize_filter f)) s.filters in
        let filters = prune_maximal ~max_filters:max_int filters in
        (* Drop filters implied by the spine continuation. *)
        let filters =
          match rest with
          | [] -> filters
          | next :: _ -> (
              match spine_as_filter rest with
              | None -> filters
              | Some below ->
                  let spine_edge = (next.axis, below) in
                  List.filter
                    (fun e -> not (Contain.filter_subsumed spine_edge e))
                    filters)
        in
        { s with filters } :: go rest
  in
  go q
