(* Bechamel micro-benchmarks: one Test.make per algorithmic kernel behind
   the experiment tables.  Estimates are OLS ns/run on the monotonic
   clock. *)

open Bechamel
open Toolkit

let xmark_doc = lazy (Benchkit.Xmark.generate ~scale:2.0 ~seed:1 ())
let xmark_indexed = lazy (Twig.Eval.index (Lazy.force xmark_doc))

let person_query = Twig.Parse.query "//person[profile/@income]/name"

let char_queries =
  lazy
    (let doc = Lazy.force xmark_doc in
     match Twig.Eval.select person_query doc with
     | a :: b :: _ ->
         (Twig.Query.of_example doc a, Twig.Query.of_example doc b)
     | _ -> failwith "micro: witnesses expected")

let dme_pair =
  ( Uschema.Dme.parse "a+ b? c* | d e? | a c",
    Uschema.Dme.parse "a* b? c* e? | d e*" )

let join_setup =
  lazy
    (let rng = Core.Prng.create 2 in
     let inst = Relational.Generator.pair_instance ~rng () in
     let space =
       Joinlearn.Signature.space
         ~left_arity:(Relational.Relation.arity inst.left)
         ~right_arity:(Relational.Relation.arity inst.right)
     in
     let goal = Joinlearn.Signature.of_predicate space inst.planted in
     let examples =
       Joinlearn.Interactive.items_of space inst.left inst.right
       |> List.filteri (fun i _ -> i mod 9 = 0)
       |> List.map (fun (it : Joinlearn.Interactive.item) ->
              Core.Example.of_labeled
                (it.mask, Joinlearn.Signature.subset goal it.mask))
     in
     (space, examples, inst))

let semijoin_setup =
  lazy
    (let _, _, inst = Lazy.force join_setup in
     let ctx = Joinlearn.Semijoin.make inst.left inst.right in
     let goal =
       Joinlearn.Signature.of_predicate (Joinlearn.Semijoin.space ctx)
         inst.planted
     in
     let labeled =
       Relational.Relation.tuples inst.left
       |> List.filteri (fun i _ -> i < 8)
       |> List.map (fun r -> (r, Joinlearn.Semijoin.selects ctx goal r))
     in
     (ctx, labeled))

let rpni_sample =
  let w s = String.split_on_char '.' s in
  ( [ w "h"; w "h.h"; w "h.h.h"; w "h.h.h.h" ],
    [ []; w "r"; w "h.r"; w "r.h"; w "h.h.r" ] )

let geo_graph =
  lazy (Graphdb.Generators.geo ~rng:(Core.Prng.create 3) ~cities:20 ())

let highway_dfa =
  Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*")

let tests () =
  [
    Test.make ~name:"twig-eval-xmark"
      (Staged.stage (fun () ->
           Twig.Eval.select_doc (Lazy.force xmark_indexed) person_query));
    Test.make ~name:"twig-lgg"
      (Staged.stage (fun () ->
           let q1, q2 = Lazy.force char_queries in
           Twig.Lgg.lgg q1 q2));
    Test.make ~name:"twig-containment"
      (Staged.stage (fun () ->
           let q1, q2 = Lazy.force char_queries in
           Twig.Contain.subsumed q1 q2));
    Test.make ~name:"dme-containment"
      (Staged.stage (fun () ->
           let e1, e2 = dme_pair in
           Uschema.Containment.dme_leq e1 e2));
    Test.make ~name:"xmark-validate"
      (Staged.stage (fun () ->
           Uschema.Schema.valid Benchkit.Xmark.schema (Lazy.force xmark_doc)));
    Test.make ~name:"join-consistency"
      (Staged.stage (fun () ->
           let space, examples, _ = Lazy.force join_setup in
           Joinlearn.Join.learn space examples));
    Test.make ~name:"semijoin-exact"
      (Staged.stage (fun () ->
           let ctx, labeled = Lazy.force semijoin_setup in
           Joinlearn.Semijoin.consistent_exact ctx labeled));
    Test.make ~name:"rpni-highway"
      (Staged.stage (fun () ->
           let pos, neg = rpni_sample in
           Automata.Rpni.learn ~pos ~neg));
    Test.make ~name:"rpq-eval-geo"
      (Staged.stage (fun () ->
           Graphdb.Rpq.eval highway_dfa (Lazy.force geo_graph)));
  ]

let run () =
  print_endline "== Bechamel micro-benchmarks (ns/run, OLS estimate) ==";
  let grouped = Test.make_grouped ~name:"kernels" (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let estimate =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, estimate) -> Printf.printf "  %-32s %14.1f\n" name estimate)
    rows;
  print_newline ()
