(** A deliberately small HTTP/1.1 server-side codec.

    The wire protocol is line-delimited JSON over HTTP: every request body
    and every response body is a single JSON value on one line.  No chunked
    transfer-encoding, no pipelining beyond keep-alive, no multi-valued
    headers — just enough of RFC 9112 for [curl] and the bundled
    {!Client} to speak to the daemon.

    The head parser ({!parse_head}) is pure, so tests can exercise framing
    without sockets; {!read_request} layers buffered socket reads (with
    size caps, so a hostile peer cannot balloon memory) on top of it. *)

type request = {
  meth : string;  (** uppercased verb: ["GET"], ["POST"], … *)
  path : string;  (** request-target as sent, e.g. ["/v1/sessions/s1"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

type response = {
  status : int;
  headers : (string * string) list;  (** extra headers; framing is added *)
  body : string;  (** sent verbatim, with a trailing newline appended *)
}

val header : string -> request -> string option
(** Case-insensitive header lookup. *)

val parse_head : string -> (request, string) result
(** Parses a request head (request line + header lines, no body, no
    terminating blank line) into a {!request} with an empty [body]. *)

val reason : int -> string
(** Canonical reason phrase ("OK", "Too Many Requests", …). *)

(** {1 Incremental (resumable) request parsing}

    The connection multiplexer owns many sockets on one thread, so it
    cannot block for a request's remaining bytes: it {!feed}s whatever the
    socket had and calls {!step}, which either produces a complete request,
    asks for more, or reports a framing error.  A request's bytes may be
    split at {e any} boundary across any number of feeds — the
    [http-incremental-parse] fuzz oracle checks the result is identical to
    whole-buffer {!parse_head}+body parsing.  Pipelined bytes beyond a
    completed request stay buffered for the next [step]. *)

type incremental

val incremental : ?max_head:int -> ?max_body:int -> unit -> incremental
(** A fresh parser (default caps 16 KiB head / 1 MiB body, as
    {!read_request}). *)

val feed : incremental -> string -> unit
val feed_sub : incremental -> Bytes.t -> pos:int -> len:int -> unit

val step :
  incremental -> [ `Request of request | `More | `Error of string ]
(** [`Request r] consumes exactly [r]'s bytes (call again for a pipelined
    successor); [`More] means the buffered prefix is valid but incomplete;
    [`Error] (oversized or malformed framing) is sticky — the connection
    is beyond salvage. *)

val pending : incremental -> int
(** Unconsumed buffered bytes. *)

val mid_request : incremental -> bool
(** A request has started but not completed — the multiplexer's
    slow-request deadline applies; [false] means the connection is idle
    and may park indefinitely. *)

(** {1 Socket I/O} *)

type conn
(** A buffered connection wrapper around a socket. *)

val conn_of_fd : Unix.file_descr -> conn

val buffered : conn -> bool
(** [true] iff unconsumed bytes are buffered — i.e. a request is partly
    received (or pipelined).  After an [Error "timeout"], this is how the
    caller distinguishes "idle keep-alive connection" from "client paused
    mid-request": only the former may be treated as an idle poll. *)

val read_request :
  ?max_head:int -> ?max_body:int -> conn -> (request option, string) result
(** Reads one request: head up to the [\r\n\r\n] terminator, then exactly
    [Content-Length] body bytes.  [Ok None] is orderly EOF before any byte
    of a request; [Error _] covers malformed heads, oversized heads/bodies
    (defaults 16 KiB / 1 MiB), and mid-request EOF.  Read timeouts set on
    the socket surface as [Error "timeout"]; the buffer is consumed only
    when a complete request has arrived, so calling again after a timeout
    resumes reading the {e same} request with nothing lost. *)

val response_bytes : keep_alive:bool -> response -> string
(** The serialized wire form: status line, headers ([Content-Length],
    [Connection], a default [Content-Type], any extras), body + ["\n"].
    The multiplexer writes these bytes non-blockingly. *)

val write_response : conn -> keep_alive:bool -> response -> (unit, string) result
(** Blocking {!response_bytes} write. *)
