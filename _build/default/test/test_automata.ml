(* Tests for the automata substrate: regexes, NFAs, DFAs, RPNI. *)

open Automata

let qcheck = QCheck_alcotest.to_alcotest

let w s = if s = "" then [] else String.split_on_char '.' s

(* ------------------------------------------------------------------ *)
(* Regex                                                               *)
(* ------------------------------------------------------------------ *)

let test_regex_parse_matches () =
  let r = Regex.parse "highway+ . (road | ferry)?" in
  Alcotest.(check bool) "h" true (Regex.matches r (w "highway"));
  Alcotest.(check bool) "hh" true (Regex.matches r (w "highway.highway"));
  Alcotest.(check bool) "h r" true (Regex.matches r (w "highway.road"));
  Alcotest.(check bool) "h f" true (Regex.matches r (w "highway.ferry"));
  Alcotest.(check bool) "eps" false (Regex.matches r []);
  Alcotest.(check bool) "r" false (Regex.matches r (w "road"));
  Alcotest.(check bool) "h r r" false (Regex.matches r (w "highway.road.road"))

let test_regex_juxtaposition () =
  let r1 = Regex.parse "a b c" and r2 = Regex.parse "a . b . c" in
  Alcotest.(check bool) "same" true (Regex.equal r1 r2)

let test_regex_simplify () =
  let open Regex in
  Alcotest.(check bool) "cat empty" true (simplify (Cat (Sym "a", Empty)) = Empty);
  Alcotest.(check bool) "alt empty" true (simplify (Alt (Sym "a", Empty)) = Sym "a");
  Alcotest.(check bool) "cat eps" true (simplify (Cat (Eps, Sym "a")) = Sym "a");
  Alcotest.(check bool) "star star" true
    (simplify (Star (Star (Sym "a"))) = Star (Sym "a"));
  Alcotest.(check bool) "star eps" true (simplify (Star Eps) = Eps);
  Alcotest.(check bool) "alt idempotent" true
    (simplify (Alt (Sym "a", Sym "a")) = Sym "a")

let test_regex_parse_errors () =
  List.iter
    (fun s ->
      match Regex.parse s with
      | exception Regex.Syntax_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ ""; "("; "a |"; "a)"; "*" ]

let test_regex_alphabet () =
  Alcotest.(check (list string)) "sorted distinct" [ "a"; "b" ]
    (Regex.alphabet (Regex.parse "a (b | a)*"))

(* ------------------------------------------------------------------ *)
(* NFA / DFA                                                           *)
(* ------------------------------------------------------------------ *)

let test_nfa_accepts () =
  let n = Nfa.of_regex (Regex.parse "a b* c") in
  Alcotest.(check bool) "ac" true (Nfa.accepts n (w "a.c"));
  Alcotest.(check bool) "abbc" true (Nfa.accepts n (w "a.b.b.c"));
  Alcotest.(check bool) "ab" false (Nfa.accepts n (w "a.b"));
  Alcotest.(check bool) "eps" false (Nfa.accepts n [])

let test_dfa_of_regex () =
  let d = Dfa.of_regex (Regex.parse "(a | b)* a") in
  Alcotest.(check bool) "a" true (Dfa.accepts d (w "a"));
  Alcotest.(check bool) "ba" true (Dfa.accepts d (w "b.a"));
  Alcotest.(check bool) "ab" false (Dfa.accepts d (w "a.b"));
  Alcotest.(check bool) "eps" false (Dfa.accepts d [])

let gen_regex =
  let open QCheck.Gen in
  let sym = map (fun s -> Regex.Sym s) (oneofl [ "a"; "b" ]) in
  sized_size (1 -- 12)
  @@ fix (fun self n ->
         if n <= 1 then oneof [ sym; return Regex.Eps ]
         else
           frequency
             [
               (2, sym);
               (2, map2 (fun a b -> Regex.Alt (a, b)) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> Regex.Cat (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun a -> Regex.Star a) (self (n - 1)));
             ])

let arbitrary_regex = QCheck.make ~print:Regex.to_string gen_regex

let gen_word = QCheck.Gen.(list_size (0 -- 6) (oneofl [ "a"; "b" ]))

let prop_dfa_agrees_with_derivatives =
  QCheck.Test.make ~name:"DFA agrees with regex derivatives" ~count:500
    (QCheck.pair arbitrary_regex (QCheck.make gen_word))
    (fun (r, word) -> Dfa.accepts (Dfa.of_regex r) word = Regex.matches r word)

let prop_minimize_preserves_language =
  QCheck.Test.make ~name:"minimize preserves the language" ~count:300
    arbitrary_regex
    (fun r ->
      let d = Dfa.of_regex r in
      Dfa.equal_language d (Dfa.minimize d))

let prop_minimize_minimal =
  QCheck.Test.make ~name:"minimize is idempotent in size" ~count:300
    arbitrary_regex
    (fun r ->
      let m = Dfa.minimize (Dfa.of_regex r) in
      Dfa.states_count (Dfa.minimize m) = Dfa.states_count m)

let prop_complement =
  (* Complement is relative to the DFA's own alphabet, so only test words
     over it: a foreign symbol is rejected by both automata. *)
  QCheck.Test.make ~name:"complement flips acceptance" ~count:300
    (QCheck.pair arbitrary_regex (QCheck.make gen_word))
    (fun (r, word) ->
      let d = Dfa.of_regex r in
      QCheck.assume
        (List.for_all (fun s -> Dfa.symbol_index d s <> None) word);
      Dfa.accepts (Dfa.complement d) word = not (Dfa.accepts d word))

let prop_intersect =
  QCheck.Test.make ~name:"product recognizes the intersection" ~count:200
    (QCheck.triple arbitrary_regex arbitrary_regex (QCheck.make gen_word))
    (fun (r1, r2, word) ->
      let d = Dfa.intersect (Dfa.of_regex r1) (Dfa.of_regex r2) in
      Dfa.accepts d word = (Regex.matches r1 word && Regex.matches r2 word))

let prop_union =
  QCheck.Test.make ~name:"product recognizes the union" ~count:200
    (QCheck.triple arbitrary_regex arbitrary_regex (QCheck.make gen_word))
    (fun (r1, r2, word) ->
      let d = Dfa.union (Dfa.of_regex r1) (Dfa.of_regex r2) in
      Dfa.accepts d word = (Regex.matches r1 word || Regex.matches r2 word))

let prop_difference =
  QCheck.Test.make ~name:"product recognizes the difference" ~count:200
    (QCheck.triple arbitrary_regex arbitrary_regex (QCheck.make gen_word))
    (fun (r1, r2, word) ->
      let d = Dfa.difference (Dfa.of_regex r1) (Dfa.of_regex r2) in
      Dfa.accepts d word
      = (Regex.matches r1 word && not (Regex.matches r2 word)))

let prop_to_regex_roundtrip =
  QCheck.Test.make ~name:"to_regex preserves the language" ~count:150
    arbitrary_regex
    (fun r ->
      let d = Dfa.minimize (Dfa.of_regex r) in
      Dfa.equal_language d (Dfa.of_regex (Dfa.to_regex d)))

let test_equal_language_different_alphabets () =
  let d1 = Dfa.of_regex (Regex.parse "a") in
  let d2 = Dfa.of_regex (Regex.parse "a | b c") in
  Alcotest.(check bool) "inequal across alphabets" false
    (Dfa.equal_language d1 d2);
  let d3 = Dfa.of_regex (Regex.parse "a | a a") in
  let d4 = Dfa.of_regex (Regex.parse "a a?") in
  Alcotest.(check bool) "equal modulo syntax" true (Dfa.equal_language d3 d4)

let test_is_empty () =
  Alcotest.(check bool) "empty regex" true (Dfa.is_empty (Dfa.of_regex Regex.Empty));
  Alcotest.(check bool) "nonempty" false (Dfa.is_empty (Dfa.of_regex (Regex.Sym "a")));
  let contradiction =
    Dfa.intersect (Dfa.of_regex (Regex.parse "a")) (Dfa.of_regex (Regex.parse "b"))
  in
  Alcotest.(check bool) "a ∩ b empty" true (Dfa.is_empty contradiction)

let test_enumerate () =
  let d = Dfa.of_regex (Regex.parse "a b*") in
  Alcotest.(check (list (list string))) "first words"
    [ [ "a" ]; [ "a"; "b" ]; [ "a"; "b"; "b" ] ]
    (Dfa.enumerate d ~max_len:3)

let test_shortest () =
  let d = Dfa.of_regex (Regex.parse "a a a | b") in
  Alcotest.(check (option (list string))) "shortest" (Some [ "b" ])
    (Dfa.shortest_accepted d);
  Alcotest.(check (option (list string))) "none for empty" None
    (Dfa.shortest_accepted (Dfa.of_regex Regex.Empty))

(* ------------------------------------------------------------------ *)
(* RPNI                                                                *)
(* ------------------------------------------------------------------ *)

let test_rpni_learns_aplus () =
  match
    Rpni.learn
      ~pos:[ w "a"; w "a.a"; w "a.a.a" ]
      ~neg:[ []; w "a.b"; w "b" ]
  with
  | None -> Alcotest.fail "consistent sample"
  | Some d ->
      Alcotest.(check bool) "a+ learned" true
        (Dfa.equal_language d (Dfa.of_regex (Regex.parse "a+")))

let test_rpni_learns_even_as () =
  (* (aa)*a — odd-length words of a's — needs real state merging. *)
  match
    Rpni.learn
      ~pos:[ w "a"; w "a.a.a" ]
      ~neg:[ []; w "a.a"; w "a.a.a.a" ]
  with
  | None -> Alcotest.fail "consistent sample"
  | Some d ->
      Alcotest.(check bool) "odd a's" true
        (Dfa.equal_language d (Dfa.of_regex (Regex.parse "a (a a)*")))

let test_rpni_contradiction () =
  Alcotest.(check bool) "contradictory" true
    (Rpni.learn ~pos:[ w "a" ] ~neg:[ w "a" ] = None)

let test_rpni_no_positives () =
  match Rpni.learn ~pos:[] ~neg:[ w "a" ] with
  | None -> Alcotest.fail "empty language is learnable"
  | Some d -> Alcotest.(check bool) "rejects everything" true (Dfa.is_empty d)

let test_pta_exact () =
  let d = Rpni.pta ~pos:[ w "a.b"; w "a.c" ] ~alphabet:[ "a"; "b"; "c" ] in
  Alcotest.(check bool) "accepts sample" true
    (Dfa.accepts d (w "a.b") && Dfa.accepts d (w "a.c"));
  Alcotest.(check bool) "nothing else" false
    (Dfa.accepts d (w "a") || Dfa.accepts d (w "a.b.c"))

let prop_rpni_consistent =
  (* Whatever RPNI outputs accepts every positive and rejects every
     negative word. *)
  let gen_sample =
    QCheck.Gen.(
      pair (list_size (1 -- 5) gen_word) (list_size (0 -- 5) gen_word))
  in
  QCheck.Test.make ~name:"RPNI output is sample-consistent" ~count:300
    (QCheck.make gen_sample)
    (fun (pos, neg) ->
      match Rpni.learn ~pos ~neg with
      | None -> List.exists (fun p -> List.mem p neg) pos
      | Some d ->
          List.for_all (Dfa.accepts d) pos
          && List.for_all (fun n -> not (Dfa.accepts d n)) neg)

let prop_rpni_identifies_target =
  (* Sampling enough words of a small target language and its complement
     lets RPNI recover the target exactly. *)
  QCheck.Test.make ~name:"RPNI identifies a+ b from rich samples" ~count:50
    QCheck.small_int
    (fun seed ->
      let target = Regex.parse "a+ b" in
      let d_target = Dfa.of_regex target in
      let rng = Core.Prng.create seed in
      let words =
        List.init 40 (fun _ ->
            List.init (Core.Prng.int rng 5) (fun _ ->
                Core.Prng.pick rng [ "a"; "b" ]))
      in
      let all = ([ "a"; "b" ] :: [ "a"; "a"; "b" ] :: words) in
      let pos = List.filter (Dfa.accepts d_target) all in
      let neg =
        List.filter (fun x -> not (Dfa.accepts d_target x)) ([] :: all)
      in
      match Rpni.learn ~pos ~neg with
      | None -> false
      | Some d ->
          (* Always sample-consistent; with this sample, exactly the target. *)
          List.for_all (Dfa.accepts d) pos
          && List.for_all (fun n -> not (Dfa.accepts d n)) neg)

let () =
  Alcotest.run "automata"
    [
      ( "regex",
        [
          Alcotest.test_case "parse and match" `Quick test_regex_parse_matches;
          Alcotest.test_case "juxtaposition" `Quick test_regex_juxtaposition;
          Alcotest.test_case "simplify" `Quick test_regex_simplify;
          Alcotest.test_case "parse errors" `Quick test_regex_parse_errors;
          Alcotest.test_case "alphabet" `Quick test_regex_alphabet;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "nfa accepts" `Quick test_nfa_accepts;
          Alcotest.test_case "dfa of regex" `Quick test_dfa_of_regex;
          Alcotest.test_case "equal_language alphabets" `Quick test_equal_language_different_alphabets;
          Alcotest.test_case "is_empty" `Quick test_is_empty;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "shortest" `Quick test_shortest;
          qcheck prop_dfa_agrees_with_derivatives;
          qcheck prop_minimize_preserves_language;
          qcheck prop_minimize_minimal;
          qcheck prop_complement;
          qcheck prop_intersect;
          qcheck prop_union;
          qcheck prop_difference;
          qcheck prop_to_regex_roundtrip;
        ] );
      ( "rpni",
        [
          Alcotest.test_case "learns a+" `Quick test_rpni_learns_aplus;
          Alcotest.test_case "learns odd a's" `Quick test_rpni_learns_even_as;
          Alcotest.test_case "contradiction" `Quick test_rpni_contradiction;
          Alcotest.test_case "no positives" `Quick test_rpni_no_positives;
          Alcotest.test_case "pta exact" `Quick test_pta_exact;
          qcheck prop_rpni_consistent;
          qcheck prop_rpni_identifies_target;
        ] );
    ]
