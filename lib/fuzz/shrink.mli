(** Greedy structural shrinking.

    A shrinker is a candidate function ['a -> 'a list]: strictly smaller
    variants of a failing input, biggest cuts first.  {!minimize} drives
    any of them to a local minimum by re-checking the oracle on every
    reduction step — the counterexample that survives is one no single
    structural cut can shrink further, which in practice is a handful of
    nodes. *)

val minimize :
  ?max_steps:int ->
  candidates:('a -> 'a list) ->
  still_failing:('a -> bool) ->
  'a ->
  'a * int
(** [minimize ~candidates ~still_failing x] repeatedly replaces [x] by its
    first candidate that still fails, until none does or [max_steps]
    (default 400) replacements were taken.  Returns the minimum and the
    number of successful reduction steps.  [x] itself must be failing. *)

(** {2 Candidate functions}

    Each returns strictly smaller values of its type (by the matching
    [Gen] size measure), largest reductions first. *)

val tree : Xmltree.Tree.t -> Xmltree.Tree.t list
(** Hoist a child over the root, delete a subtree, or recurse. *)

val twig : Twig.Query.t -> Twig.Query.t list
(** Drop a spine step, drop or reduce a filter, simplify a test. *)

val filter_edge :
  Twig.Query.axis * Twig.Query.filter ->
  (Twig.Query.axis * Twig.Query.filter) list

val regex : Automata.Regex.t -> Automata.Regex.t list
val graph : Graphdb.Graph.t -> Graphdb.Graph.t list
val relation : Relational.Relation.t -> Relational.Relation.t list
val schema : Uschema.Schema.t -> Uschema.Schema.t list
val string_ : string -> string list

val list_ : ('a -> 'a list) -> 'a list -> 'a list list
(** Drop one element, or shrink one element in place. *)
