(* The cost of observability (PR-3): what the telemetry layer adds to each
   interactive engine, measured two ways.

   - Disabled path: the instrumentation compiles to a mutable-bool load and
     branch per entry point.  We measure that per-call residue directly in a
     tight loop, then scale it by the number of instrumentation events each
     engine actually fires (read back from the enabled run's own counters) to
     estimate the disabled overhead as a fraction of the engine's runtime.
   - Enabled path: median wall-clock of the full session with spans + metrics
     recording, against the disabled median.

   Results go to BENCH_PR3.json — machine-readable, for the CI artifact and
   the <5% disabled-overhead gate. *)

module T = Core.Telemetry

let time f =
  let t0 = Core.Monotonic.now () in
  let x = f () in
  (x, Core.Monotonic.now () -. t0)

let reps = 5

(* Untimed runs before each timed block.  One warm run proved not to be
   enough: BENCH_PR3 occasionally reported *negative* enabled overheads
   because the disabled block, measured first, was still paying allocator
   and minor-heap warmup that the enabled block then inherited for free. *)
let warmup = 2

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

(* ------------------------------------------------------------------ *)
(* The disabled fast path, in isolation                                *)
(* ------------------------------------------------------------------ *)

let disabled_incr_ns () =
  T.set_enabled false;
  let c = T.Metrics.counter "bench.overhead.disabled" in
  let n = 20_000_000 in
  let (), dt =
    time (fun () ->
        for _ = 1 to n do
          T.Metrics.incr c
        done)
  in
  dt /. float_of_int n *. 1e9

let disabled_span_ns () =
  T.set_enabled false;
  let n = 5_000_000 in
  let (), dt =
    time (fun () ->
        for _ = 1 to n do
          T.with_span "bench.overhead.span" ignore
        done)
  in
  dt /. float_of_int n *. 1e9

(* The shadow-counter technique (a plain int incremented in the hot path,
   flushed into the registry at question boundaries — see
   Joinlearn.Join.Version_space): its per-event cost is a local load/add/store. *)
let shadow_ns () =
  let r = ref 0 in
  let n = 50_000_000 in
  let (), dt =
    time (fun () ->
        for _ = 1 to n do
          incr r
        done)
  in
  ignore (Sys.opaque_identity !r);
  dt /. float_of_int n *. 1e9

(* ------------------------------------------------------------------ *)
(* Per-engine sessions                                                 *)
(* ------------------------------------------------------------------ *)

(* The same three E-workload sessions BENCH_PR2 times, minus the journal:
   each [run] plays one full deterministic interactive session. *)

let twig_engine () =
  let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:1 () in
  let goal = Twig.Parse.query "//person[profile/education]/name" in
  let items = Twiglearn.Interactive.items_of_doc doc in
  let oracle it = Core.Flaky.Label (Twig.Eval.selects_example goal it) in
  ( "learn-twig",
    fun () ->
      let o =
        Twiglearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1) ~oracle
          ~items ()
      in
      o.questions )

let join_engine () =
  let rng = Core.Prng.create 1 in
  let inst =
    Relational.Generator.pair_instance ~rng ~left_rows:30 ~right_rows:30 ()
  in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  let items = Joinlearn.Interactive.items_of space inst.left inst.right in
  let goal = Joinlearn.Signature.of_predicate space inst.planted in
  let oracle (it : Joinlearn.Interactive.item) =
    Core.Flaky.Label (Joinlearn.Signature.subset goal it.mask)
  in
  ( "learn-join",
    fun () ->
      let o =
        Joinlearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1)
          ~strategy:Joinlearn.Interactive.lattice_strategy ~oracle ~items ()
      in
      o.questions )

let path_engine () =
  let rng = Core.Prng.create 1 in
  let graph = Graphdb.Generators.geo ~rng ~cities:14 () in
  let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in
  let items = Pathlearn.Interactive.items_of_graph ~max_len:3 ~rng graph in
  let oracle (it : Pathlearn.Interactive.item) =
    Core.Flaky.Label (Automata.Dfa.accepts goal it.word)
  in
  ( "learn-path",
    fun () ->
      let o =
        Pathlearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1) ~oracle
          ~items ()
      in
      o.questions )

type span_line = { s_name : string; s_count : int; s_total : float; s_self : float }

type engine_result = {
  name : string;
  questions : int;
  disabled_s : float;
  enabled_s : float;
  enabled_overhead : float;
  counter_events : int;
  shadow_events : int;
  span_events : int;
  disabled_overhead_est : float;
  top_spans : span_line list;
}

(* Counters whose call sites pay the disabled-check branch per event.  The
   join signature-test counter is shadow-counted instead (plain int in the
   hot path, flushed per question), so it is costed separately. *)
let branch_counters =
  [
    "learnq.interact.questions";
    "learnq.interact.replayed";
    "learnq.interact.retried";
    "learnq.twig.contain_calls";
    "learnq.twig.filter_contain_calls";
    "learnq.twig.semantic_contain_calls";
    "learnq.twiglearn.lgg_calls";
    "learnq.twiglearn.candidates";
    "learnq.twiglearn.consistency_checks";
    "learnq.twiglearn.items";
    "learnq.join.rows_labeled";
    "learnq.join.signatures";
    "learnq.semijoin.rows_labeled";
    "learnq.semijoin.signature_tests";
    "learnq.path.words_labeled";
    "learnq.path.walks";
  ]

let shadow_counters = [ "learnq.join.signature_tests" ]

let measure ~incr_ns ~span_ns ~sh_ns (name, run) =
  (* Warm caches and allocators outside the timed region — separately for
     each mode, so neither block pays the other's warmup. *)
  T.reset ();
  T.set_enabled false;
  for _ = 1 to warmup do
    ignore (run ())
  done;
  let disabled_s =
    median
      (List.init reps (fun _ ->
           let _, dt = time run in
           dt))
  in
  (* Enabled: reset between reps so each run records the same session; the
     last rep's registry is the one we read back. *)
  let questions = ref 0 in
  T.set_enabled true;
  for _ = 1 to warmup do
    T.reset ();
    ignore (run ())
  done;
  let enabled_s =
    median
      (List.init reps (fun _ ->
           T.reset ();
           T.set_enabled true;
           let q, dt = time run in
           questions := q;
           dt))
  in
  (* Instrumentation event counts from the run's own registry (the registry
     has no fold; missing names register fresh zero counters — harmless).
     Bulk [incr ~by] counts once per unit here, so the estimate errs high. *)
  let sum names =
    List.fold_left
      (fun acc n -> acc + T.Metrics.counter_value (T.Metrics.counter n))
      0 names
  in
  let counter_events = sum branch_counters in
  let shadow_events = sum shadow_counters in
  let aggregates = T.span_aggregates () in
  let span_events = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 aggregates in
  let top_spans =
    List.filteri (fun i _ -> i < 5)
      (List.map
         (fun (s_name, s_count, s_total, s_self) ->
           { s_name; s_count; s_total; s_self })
         aggregates)
  in
  T.reset ();
  T.set_enabled false;
  let disabled_cost_s =
    (float_of_int counter_events *. incr_ns
    +. float_of_int shadow_events *. sh_ns
    +. float_of_int span_events *. span_ns)
    /. 1e9
  in
  {
    name;
    questions = !questions;
    disabled_s;
    enabled_s;
    enabled_overhead =
      (if disabled_s > 0. then (enabled_s -. disabled_s) /. disabled_s else 0.);
    counter_events;
    shadow_events;
    span_events;
    disabled_overhead_est =
      (if disabled_s > 0. then disabled_cost_s /. disabled_s else 0.);
    top_spans;
  }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let output = "BENCH_PR3.json"

let span_json s =
  Printf.sprintf
    {|        { "name": %S, "count": %d, "total_s": %.6f, "self_s": %.6f }|}
    s.s_name s.s_count s.s_total s.s_self

let engine_json e =
  Printf.sprintf
    {|    { "engine": %S, "questions": %d,
      "disabled_s": %.6f, "enabled_s": %.6f, "enabled_overhead": %.4f,
      "counter_events": %d, "shadow_events": %d, "span_events": %d,
      "disabled_overhead_est": %.6f,
      "top_spans": [
%s
      ] }|}
    e.name e.questions e.disabled_s e.enabled_s e.enabled_overhead
    e.counter_events e.shadow_events e.span_events e.disabled_overhead_est
    (String.concat ",\n" (List.map span_json e.top_spans))

let run () =
  let incr_ns = disabled_incr_ns () in
  let span_ns = disabled_span_ns () in
  let sh_ns = shadow_ns () in
  let engines =
    List.map
      (fun mk -> measure ~incr_ns ~span_ns ~sh_ns (mk ()))
      [ twig_engine; join_engine; path_engine ]
  in
  let worst f = List.fold_left (fun acc e -> Float.max acc (f e)) 0. engines in
  let disabled_max = worst (fun e -> e.disabled_overhead_est) in
  let enabled_max = worst (fun e -> e.enabled_overhead) in
  let json =
    Printf.sprintf
      {|{
  "bench": "pr3_telemetry_overhead",
  "generated_by": "dune exec bench/main.exe -- pr3",
  "reps_per_point": %d,
  "warmup_per_point": %d,
  "disabled_path": {
    "incr_ns_per_call": %.2f,
    "span_ns_per_call": %.2f,
    "shadow_ns_per_event": %.2f
  },
  "engines": [
%s
  ],
  "disabled_overhead_est_max": %.6f,
  "disabled_overhead_under_5pct": %b,
  "enabled_overhead_max": %.4f,
  "enabled_overhead_under_10pct": %b
}
|}
      reps warmup incr_ns span_ns sh_ns
      (String.concat ",\n" (List.map engine_json engines))
      disabled_max
      (disabled_max < 0.05)
      enabled_max
      (enabled_max < 0.10)
  in
  let oc = open_out output in
  output_string oc json;
  close_out oc;
  Printf.printf
    "pr3: disabled fast path — incr %.1f ns/call, span %.1f ns/call, shadow \
     %.1f ns/event\n"
    incr_ns span_ns sh_ns;
  List.iter
    (fun e ->
      Printf.printf
        "pr3: %-10s %4d questions — disabled %.1f ms, enabled %.1f ms \
         (%+.1f%%); %d counter + %d shadow + %d span events, disabled \
         overhead est %.3f%%\n"
        e.name e.questions (e.disabled_s *. 1e3) (e.enabled_s *. 1e3)
        (e.enabled_overhead *. 100.)
        e.counter_events e.shadow_events e.span_events
        (e.disabled_overhead_est *. 100.))
    engines;
  Printf.printf "pr3: wrote %s\n" output
