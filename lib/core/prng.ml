type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy g = { state = g.state }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = next_int64 g in
  { state = mix64 s }

let int g bound =
  if bound <= 0 then
    invalid_arg
      (Printf.sprintf "Prng.int: bound must be positive, got %d" bound);
  (* Shift by 2 so the value fits OCaml's 63-bit native int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let int_in g lo hi =
  if hi < lo then
    invalid_arg
      (Printf.sprintf "Prng.int_in: empty range, got [%d, %d]" lo hi);
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. (r /. 9007199254740992.0)

let bool g = Int64.logand (next_int64 g) 1L = 1L
let chance g p = float g 1.0 < p

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let pick_array g a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array";
  a.(int g (Array.length a))

let shuffle g xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample g k xs =
  let shuffled = shuffle g xs in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take k shuffled
