lib/benchkit/xpathmark.ml: List Printf Twig
