lib/uschema/dme.mli: Core Format Multiplicity String
