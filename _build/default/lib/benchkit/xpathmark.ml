type entry = {
  id : string;
  xpath : string;
  twig : Twig.Query.t option;
  reason : string option;
}

let twig id xpath =
  match Twig.Parse.query_opt xpath with
  | Some q -> { id; xpath; twig = Some q; reason = None }
  | None ->
      invalid_arg
        (Printf.sprintf "Xpathmark: query %s should be twig-expressible" id)

let non id xpath reason = { id; xpath; twig = None; reason = Some reason }

let queries =
  [
    (* A: axes — the fragment's home turf and its limits. *)
    twig "A1"
      "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword";
    non "A2" "//closed_auction//keyword/ancestor::text"
      "reverse axis (ancestor)";
    twig "A3" "/site/closed_auctions/closed_auction//keyword";
    twig "A4" "/site/closed_auctions/closed_auction[annotation/description//keyword]/date";
    non "A5"
      "/site/closed_auctions/closed_auction[following-sibling::closed_auction]/date"
      "sibling axis";
    twig "A6" "/site/people/person[profile/gender][profile/age]/name";
    non "A7" "/site/people/person[phone or homepage]/name"
      "boolean disjunction in predicate";
    non "A8"
      "/site/people/person[address and (phone or homepage) and (creditcard or profile)]/name"
      "boolean connectives in predicate";
    (* B: positional and comparison predicates. *)
    non "B1" "/site/open_auctions/open_auction/bidder[1]/increase"
      "positional predicate";
    non "B2" "/site/open_auctions/open_auction/bidder[last()]/increase"
      "positional function last()";
    non "B3"
      "/site/open_auctions/open_auction[bidder[1]/increase = bidder[last()]/increase]"
      "value join between subexpressions";
    non "B4"
      "//open_auction[reserve > initial]/interval" "value comparison";
    twig "B5" "/site/open_auctions/open_auction[annotation]//keyword";
    non "B6" "//person[profile/@income > 50000]/name" "numeric comparison";
    twig "B7" "//person[profile/@income]/name";
    non "B8" "//person[name = 'Aki']/emailaddress" "value equality on text";
    (* C: structure navigation. *)
    twig "C1" "/site/regions//item[location][mailbox]/name";
    twig "C2" "/site/regions/*/item/description/parlist/listitem";
    non "C3" "//item[parent::africa]/name" "reverse axis (parent)";
    non "C4" "count(//item[location = 'United States'])" "aggregation";
    (* D: values and identifiers. *)
    non "D1" "id(//open_auction/seller/@person)/name" "id() dereferencing";
    non "D2" "//person[@id = //open_auction/seller/@person]/name"
      "value join across branches";
    twig "D3" "//open_auction[bidder/personref]/current";
    non "D4" "substring-before(//interval/start, '/')" "string function";
    (* E: output shape. *)
    non "E1" "//person/name | //item/name" "union of result paths";
    non "E2" "//keyword/text()" "text() node test";
  ]

let expressible = List.filter (fun e -> e.twig <> None) queries
