(** Learning n-ary queries: extracting {e tuples} of nodes, not single
    nodes — what XML-to-relational shredding actually needs, and the setting
    of the works the paper builds on ("learning n-ary node selecting tree
    transducers from completely annotated examples", "interactive tuples
    extraction from semi-structured data", Section 2).

    The query class is the practical anchor-and-projections shape: a unary
    {e anchor} twig selects a row node, and each column is a fixed-depth
    downward {e projection path} (label or wildcard tests) from the anchor
    to the component; a column may be the anchor itself (empty path).  An
    answer is one tuple per combination of projection matches under each
    anchor answer.

    Learning from completely annotated tuples factorizes: the anchors are
    the lowest common ancestors of the example tuples, learned with the
    unary positive-example learner; each projection is the per-position
    generalization of the observed relative label paths (equal labels stay,
    disagreements become wildcards; length disagreements leave the class). *)

type projection = Twig.Query.test list
(** Child steps below the anchor; [\[\]] projects the anchor itself. *)

type t = { anchor : Twig.Query.t; columns : projection list }

type example = { doc : Xmltree.Tree.t; nodes : Xmltree.Tree.path list }
(** One annotated tuple: component node paths, in column order. *)

val example : Xmltree.Tree.t -> Xmltree.Tree.path list -> example
(** @raise Invalid_argument when a path misses the document or the tuple is
    empty. *)

val lca : Xmltree.Tree.path list -> Xmltree.Tree.path
(** Longest common prefix. *)

val learn : ?budget:Core.Budget.t -> example list -> t option
(** [None] when the examples disagree on arity or projection depths, or the
    anchor is not learnable in the anchored fragment.  The result extracts
    every example tuple (tested).
    @raise Core.Budget.Out_of_budget when [budget] runs out. *)

val extract :
  ?budget:Core.Budget.t -> t -> Xmltree.Tree.t -> Xmltree.Tree.path list list
(** All answer tuples (component paths), in document order of the anchors.
    Ticks [budget] per anchor, per projection node visited, and per answer
    tuple materialized (answer sets are cartesian products and can explode).
    @raise Invalid_argument on arity-0 queries (impossible from {!learn}).
    @raise Core.Budget.Out_of_budget when [budget] runs out. *)

val extract_values : t -> Xmltree.Tree.t -> string list list
(** The tuples' text contents ({!Xmltree.Tree.value_of}; [""] when a
    component has none). *)

val to_relation :
  name:string -> attrs:string list -> t -> Xmltree.Tree.t ->
  Relational.Relation.t
(** Shredding: {!extract_values} into a relation.
    @raise Invalid_argument when [attrs] does not match the arity. *)

val pp : Format.formatter -> t -> unit
