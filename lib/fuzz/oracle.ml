module Prng = Core.Prng
module Tree = Xmltree.Tree
module Query = Twig.Query
module TI = Twiglearn.Interactive

type 'a spec = {
  name : string;
  about : string;
  generate : Prng.t -> size:int -> 'a;
  check : 'a -> (unit, string) result;
  candidates : 'a -> 'a list;
  print : 'a -> string;
  size_of : 'a -> int;
}

type t = Spec : 'a spec -> t

let name (Spec s) = s.name
let about (Spec s) = s.about

let failf fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest -> (
      match f x with Ok () -> check_all f rest | Error _ as e -> e)

let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1
let pstr pp v = Format.asprintf "%a" pp v

let pp_edge ppf ((a, f) : Query.axis * Query.filter) =
  Format.fprintf ppf "%s%a"
    (match a with Query.Child -> "/" | Query.Descendant -> "//")
    Query.pp_filter f

(* ------------------------------------------------------------------ *)
(* eval-cache: selects (memoized membership) ≡ select (fresh scan),    *)
(* under physically distinct and hash-consed copies of the query       *)
(* ------------------------------------------------------------------ *)

let rec copy_filter (f : Query.filter) =
  { Query.ftest = f.ftest;
    fsubs = List.map (fun (a, s) -> (a, copy_filter s)) f.fsubs }

let copy_query (q : Query.t) =
  List.map
    (fun (s : Query.step) ->
      { Query.axis = s.axis;
        test = s.test;
        filters = List.map (fun (a, f) -> (a, copy_filter f)) s.filters })
    q

let intern_query (q : Query.t) =
  List.map
    (fun (s : Query.step) ->
      { s with
        Query.test = Twig.Hcons.test s.test;
        filters =
          List.map (fun (a, f) -> (a, fst (Twig.Hcons.filter f))) s.filters })
    q

let check_eval_cache (t, qs) =
  let paths = Tree.all_paths t in
  check_all
    (fun q ->
      let reference = Twig.Eval.select q t in
      check_all
        (fun (variant, q') ->
          check_all
            (fun p ->
              let cached = Twig.Eval.selects q' t p in
              let fresh = List.mem p reference in
              if cached = fresh then Ok ()
              else
                failf "selects(%s) = %b but select = %b at node %s for %s"
                  variant cached fresh (pstr Tree.pp_path p)
                  (Query.to_string q))
            paths)
        [ ("same", q); ("copy", copy_query q); ("hcons", intern_query q) ])
    qs

let eval_cache =
  Spec
    { name = "eval-cache";
      about = "Eval.selects probe cache ≡ fresh Eval.select, incl. Hcons'd queries";
      generate =
        (fun g ~size ->
          let t = Gen.tree g ~size:(max 2 size) in
          let qs =
            List.init 3 (fun _ ->
                if Prng.bool g then Gen.twig g ~size:(max 2 (size / 2))
                else Gen.anchored_twig g ~size:(max 2 (size / 2)))
          in
          (t, qs));
      check = check_eval_cache;
      candidates =
        (fun (t, qs) ->
          List.map (fun t' -> (t', qs)) (Shrink.tree t)
          @ List.map (fun qs' -> (t, qs')) (Shrink.list_ Shrink.twig qs));
      print =
        (fun (t, qs) ->
          Tree.to_string t ^ "\n"
          ^ String.concat "\n" (List.map Query.to_string qs));
      size_of =
        (fun (t, qs) ->
          Tree.size t + List.fold_left (fun n q -> n + Query.size q) 0 qs);
    }

(* ------------------------------------------------------------------ *)
(* contain-cache: memoized filter_subsumed ≡ uncached, across an       *)
(* Hcons generation bump                                               *)
(* ------------------------------------------------------------------ *)

let check_contain_cache edges =
  let pairs =
    List.concat_map (fun e1 -> List.map (fun e2 -> (e1, e2)) edges) edges
  in
  let round tag =
    check_all
      (fun (e1, e2) ->
        let cached = Twig.Contain.filter_subsumed e1 e2 in
        let fresh = Twig.Contain.filter_subsumed_uncached e1 e2 in
        if cached = fresh then Ok ()
        else
          failf "%s: filter_subsumed %s ⊑ %s: cached=%b uncached=%b" tag
            (pstr pp_edge e1) (pstr pp_edge e2) cached fresh)
      pairs
  in
  let* () = round "warm" in
  Twig.Hcons.clear ();
  round "post-clear"

let contain_cache =
  Spec
    { name = "contain-cache";
      about = "Contain.filter_subsumed memo ≡ uncached, across Hcons.clear";
      generate =
        (fun g ~size ->
          List.init
            (Prng.int_in g 2 5)
            (fun _ -> Gen.filter_edge g ~size:(max 1 (size / 2))));
      check = check_contain_cache;
      candidates = Shrink.list_ Shrink.filter_edge;
      print =
        (fun edges -> String.concat "\n" (List.map (pstr pp_edge) edges));
      size_of =
        (fun edges ->
          List.fold_left (fun n (_, f) -> n + Query.filter_size f) 0 edges);
    }

(* ------------------------------------------------------------------ *)
(* contain-vs-eval: containment decisions cross-checked against        *)
(* evaluation on generated and canonical witness documents             *)
(* ------------------------------------------------------------------ *)

let check_contain_vs_eval (q1, q2, t) =
  let* () =
    if Twig.Contain.subsumed q1 q1 then Ok ()
    else failf "subsumed q q = false for %s" (Query.to_string q1)
  in
  let sel1 = Twig.Eval.select q1 t in
  let* () =
    if Twig.Contain.subsumed q1 q2 then
      let sel2 = Twig.Eval.select q2 t in
      let* () =
        if subset sel1 sel2 then Ok ()
        else
          failf "subsumed says %s ⊆ %s but a selected node escapes on %s"
            (Query.to_string q1) (Query.to_string q2) (Tree.to_string t)
      in
      let* () =
        check_all
          (fun (doc, path) ->
            if Twig.Eval.selects q2 doc path then Ok ()
            else
              failf
                "subsumed says %s ⊆ %s but q2 misses canonical witness %s of q1"
                (Query.to_string q1) (Query.to_string q2) (Tree.to_string doc))
          (Twig.Contain.canonical_instances q1)
      in
      if Twig.Contain.subsumed_semantic q1 q2 then Ok ()
      else
        failf "subsumed %s %s holds but subsumed_semantic denies it"
          (Query.to_string q1) (Query.to_string q2)
    else Ok ()
  in
  let* () =
    let anchored = Query.anchor q1 in
    if subset sel1 (Twig.Eval.select anchored t) then Ok ()
    else
      failf "anchor %s = %s loses a selected node on %s" (Query.to_string q1)
        (Query.to_string anchored) (Tree.to_string t)
  in
  let* () =
    let minimized = Twig.Lgg.minimize q1 in
    if Twig.Eval.select minimized t = sel1 then Ok ()
    else
      failf "minimize %s = %s changes the answer set on %s"
        (Query.to_string q1) (Query.to_string minimized) (Tree.to_string t)
  in
  check_all
    (fun (doc, path) ->
      if Twig.Eval.selects q1 doc path then Ok ()
      else
        failf "%s does not select its own canonical instance %s"
          (Query.to_string q1) (Tree.to_string doc))
    (Twig.Contain.canonical_instances q1)

let contain_vs_eval =
  Spec
    { name = "contain-vs-eval";
      about =
        "subsumed/anchor/minimize cross-checked against evaluation on witness docs";
      generate =
        (fun g ~size ->
          let q1 = Gen.twig g ~size:(max 2 size) in
          let q2 =
            if Prng.bool g then Gen.twig g ~size:(max 2 size)
            else Gen.generalize g q1
          in
          (q1, q2, Gen.tree g ~size:(max 2 (2 * size))));
      check = check_contain_vs_eval;
      candidates =
        (fun (q1, q2, t) ->
          List.map (fun q1' -> (q1', q2, t)) (Shrink.twig q1)
          @ List.map (fun q2' -> (q1, q2', t)) (Shrink.twig q2)
          @ List.map (fun t' -> (q1, q2, t')) (Shrink.tree t));
      print =
        (fun (q1, q2, t) ->
          Printf.sprintf "q1: %s\nq2: %s\ndoc: %s" (Query.to_string q1)
            (Query.to_string q2) (Tree.to_string t));
      size_of =
        (fun (q1, q2, t) -> Query.size q1 + Query.size q2 + Tree.size t);
    }

(* ------------------------------------------------------------------ *)
(* lgg-incremental: Positive.Incremental ≡ learn_positive on arbitrary *)
(* corpora (the XMark-only property test, generalized)                 *)
(* ------------------------------------------------------------------ *)

let live_element_paths t paths =
  List.filter
    (fun p ->
      match Tree.node_at t p with
      | Some n -> not (Tree.is_text n)
      | None -> false)
    paths

let selection_equivalent t e c =
  Twig.Contain.equiv e c
  || Twig.Eval.select e t = Twig.Eval.select c t
     && Twig.Contain.subsumed_semantic e c
     && Twig.Contain.subsumed_semantic c e

let check_lgg_incremental (t, paths) =
  let module I = Twiglearn.Positive.Incremental in
  let items =
    List.map (Xmltree.Annotated.make t) (live_element_paths t paths)
  in
  let batch = Twiglearn.Positive.learn_positive items in
  let inc = I.candidate (List.fold_left I.add I.empty items) in
  let* () =
    match (batch, inc) with
    | None, None -> Ok ()
    | Some a, Some b when Query.equal a b -> Ok ()
    | _ ->
        failf "batch LGG %s ≠ incremental %s"
          (match batch with Some q -> Query.to_string q | None -> "⊥")
          (match inc with Some q -> Query.to_string q | None -> "⊥")
  in
  let rec steps acc = function
    | [] -> Ok ()
    | item :: rest -> (
        let ext = I.extend_consistent acc item in
        let next = I.add acc item in
        let cand = I.candidate next in
        match (ext, cand) with
        | None, None -> steps next rest
        | Some e, Some c when selection_equivalent t e c -> steps next rest
        | Some e, Some c ->
            failf "extend_consistent %s not selection-equivalent to %s"
              (Query.to_string e) (Query.to_string c)
        | Some e, None ->
            failf "extend_consistent says %s but candidate says inconsistent"
              (Query.to_string e)
        | None, Some c ->
            failf "extend_consistent says inconsistent but candidate = %s"
              (Query.to_string c))
  in
  steps I.empty items

let lgg_incremental =
  Spec
    { name = "lgg-incremental";
      about = "incremental LGG ≡ batch learn_positive on arbitrary corpora";
      generate =
        (fun g ~size ->
          let t = Gen.tree g ~size:(max 2 size) in
          let k = Prng.int_in g 1 4 in
          (t, Prng.sample g k (Gen.element_paths t)));
      check = check_lgg_incremental;
      candidates =
        (fun (t, paths) ->
          List.map (fun t' -> (t', paths)) (Shrink.tree t)
          @ List.map (fun ps -> (t, ps)) (Shrink.list_ (fun _ -> []) paths));
      print =
        (fun (t, paths) ->
          Tree.to_string t ^ "\n"
          ^ String.concat " " (List.map (pstr Tree.pp_path) paths));
      size_of = (fun (t, _) -> Tree.size t);
    }

(* ------------------------------------------------------------------ *)
(* Interactive sessions                                                *)
(* ------------------------------------------------------------------ *)

let transcript (o : TI.Loop.outcome) =
  List.map (fun (it, l) -> (TI.encode_item it, l)) o.asked

let transcripts_differ name ta tb =
  if ta = tb then Ok ()
  else
    let rec first_diff i = function
      | (a :: ra, b :: rb) ->
          if a = b then first_diff (i + 1) (ra, rb)
          else
            failf "%s: question %d differs: %s=%b vs %s=%b" name i (fst a)
              (snd a) (fst b) (snd b)
      | [], _ | _, [] ->
          failf "%s: transcript lengths differ (%d vs %d)" name (List.length ta)
            (List.length tb)
    in
    first_diff 0 (ta, tb)

let queries_equal name qa qb =
  if Option.equal Query.equal qa qb then Ok ()
  else
    failf "%s: learned queries differ: %s vs %s" name
      (match qa with Some q -> Query.to_string q | None -> "⊥")
      (match qb with Some q -> Query.to_string q | None -> "⊥")

let check_interact_batch (doc, goal) =
  let run ~batch =
    TI.set_batch_lgg batch;
    Fun.protect
      ~finally:(fun () -> TI.set_batch_lgg false)
      (fun () -> TI.run_with_goal ~rng:(Prng.create 17) ~doc ~goal ())
  in
  let b = run ~batch:true in
  let i = run ~batch:false in
  let* () =
    transcripts_differ "batch vs incremental" (transcript b) (transcript i)
  in
  queries_equal "batch vs incremental" b.query i.query

let doc_goal_spec ~name ~about check =
  Spec
    { name;
      about;
      generate =
        (fun g ~size ->
          let doc = Gen.tree g ~size:(max 2 size) in
          (doc, Gen.goal g doc));
      check;
      candidates =
        (fun (doc, goal) ->
          List.map (fun d -> (d, goal)) (Shrink.tree doc)
          @ List.map (fun q -> (doc, q)) (Shrink.twig goal));
      print =
        (fun (doc, goal) ->
          Printf.sprintf "doc: %s\ngoal: %s" (Tree.to_string doc)
            (Query.to_string goal));
      size_of = (fun (doc, _) -> Tree.size doc);
    }

let interact_batch =
  doc_goal_spec ~name:"interact-batch"
    ~about:"interactive sessions ask identical questions with batch vs incremental LGG"
    check_interact_batch

let read_file path = In_channel.with_open_bin path In_channel.input_all

let with_temp_file prefix suffix f =
  let path = Filename.temp_file prefix suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let run_pooled ~pool_size ~doc ~goal =
  let pool = Core.Pool.create pool_size in
  Fun.protect
    ~finally:(fun () -> Core.Pool.shutdown pool)
    (fun () ->
      with_temp_file "learnq-fuzz-pool" ".journal" (fun path ->
          let j =
            Core.Journal.create ~sync:Core.Journal.Off ~path
              { Core.Journal.seed = 0; engine = "fuzz"; config = "pool" }
          in
          let out =
            Fun.protect
              ~finally:(fun () -> Core.Journal.close j)
              (fun () ->
                TI.Loop.run ~rng:(Prng.create 17) ~pool
                  ~journal:(j, TI.encode_item)
                  ~oracle:(fun it -> Twig.Eval.selects_example goal it)
                  ~items:(TI.items_of_doc doc) ())
          in
          (transcript out, out.query, read_file path)))

let check_interact_pool (doc, goal) =
  let t1, q1, j1 = run_pooled ~pool_size:1 ~doc ~goal in
  check_all
    (fun n ->
      let tn, qn, jn = run_pooled ~pool_size:n ~doc ~goal in
      let tag = Printf.sprintf "pool 1 vs %d" n in
      let* () = transcripts_differ tag t1 tn in
      let* () = queries_equal tag q1 qn in
      if j1 = jn then Ok ()
      else failf "%s: journal bytes differ (%d vs %d bytes)" tag
          (String.length j1) (String.length jn))
    [ 2; 4 ]

let interact_pool =
  doc_goal_spec ~name:"interact-pool"
    ~about:"pool sizes 1/2/4 ask byte-identical question sequences and journals"
    check_interact_pool

let check_journal_resume (doc, goal, permille) =
  let items = TI.items_of_doc doc in
  let oracle it = Twig.Eval.selects_example goal it in
  with_temp_file "learnq-fuzz-journal" ".wal" (fun path ->
      let j =
        Core.Journal.create ~sync:Core.Journal.Off ~path
          { Core.Journal.seed = 0; engine = "fuzz"; config = "resume" }
      in
      let full =
        Fun.protect
          ~finally:(fun () -> Core.Journal.close j)
          (fun () ->
            TI.Loop.run ~rng:(Prng.create 17) ~journal:(j, TI.encode_item)
              ~oracle ~items ())
      in
      let bytes = read_file path in
      let cut = String.length bytes * permille / 1000 in
      with_temp_file "learnq-fuzz-journal" ".cut" (fun tpath ->
          Out_channel.with_open_bin tpath (fun oc ->
              Out_channel.output_string oc (String.sub bytes 0 cut));
          match Core.Journal.resume ~path:tpath () with
          | Error (Core.Error.Corrupt_journal _ as e) ->
              failf
                "clean truncation at byte %d/%d reported as corruption: %s" cut
                (String.length bytes) (Core.Error.to_string e)
          | Error _ -> Ok () (* header itself truncated: nothing to resume *)
          | Ok (j2, recovered) ->
              let replies =
                List.filter_map
                  (fun (s, r) ->
                    Option.map (fun it -> (it, r)) (TI.decode_item ~doc s))
                  (Core.Journal.answered recovered)
              in
              let resumed =
                Fun.protect
                  ~finally:(fun () -> Core.Journal.close j2)
                  (fun () ->
                    TI.Loop.run ~rng:(Prng.create 17)
                      ~journal:(j2, TI.encode_item) ~resume:replies ~oracle
                      ~items ())
              in
              let* () =
                transcripts_differ "full vs resumed" (transcript full)
                  (transcript resumed)
              in
              queries_equal "full vs resumed" full.query resumed.query))

let journal_resume =
  Spec
    { name = "journal-resume";
      about = "journal truncated at a fuzzed point resumes to the same query";
      generate =
        (fun g ~size ->
          let doc = Gen.tree g ~size:(max 2 size) in
          (doc, Gen.goal g doc, Prng.int g 1001));
      check = check_journal_resume;
      candidates =
        (fun (doc, goal, p) ->
          List.map (fun d -> (d, goal, p)) (Shrink.tree doc)
          @ List.map (fun q -> (doc, q, p)) (Shrink.twig goal));
      print =
        (fun (doc, goal, p) ->
          Printf.sprintf "doc: %s\ngoal: %s\ncut: %d‰" (Tree.to_string doc)
            (Query.to_string goal) p);
      size_of = (fun (doc, _, _) -> Tree.size doc);
    }

(* ------------------------------------------------------------------ *)
(* rpq-naive: BFS product construction ≡ dumb fixpoint reference       *)
(* ------------------------------------------------------------------ *)

let naive_rpq (dfa : Automata.Dfa.t) g =
  let n = Graphdb.Graph.node_count g in
  let edges = Graphdb.Graph.edges g in
  let answers = ref [] in
  for src = 0 to n - 1 do
    let reach = Hashtbl.create 16 in
    Hashtbl.replace reach (src, dfa.Automata.Dfa.start) ();
    let changed = ref true in
    while !changed do
      changed := false;
      let pairs = Hashtbl.fold (fun k () acc -> k :: acc) reach [] in
      List.iter
        (fun (u, s) ->
          List.iter
            (fun (x, lbl, v) ->
              if x = u then
                match Automata.Dfa.symbol_index dfa lbl with
                | None -> ()
                | Some si ->
                    let s' = dfa.Automata.Dfa.next.(s).(si) in
                    if not (Hashtbl.mem reach (v, s')) then begin
                      Hashtbl.replace reach (v, s') ();
                      changed := true
                    end)
            edges)
        pairs
    done;
    Hashtbl.iter
      (fun (v, s) () ->
        if dfa.Automata.Dfa.final.(s) then answers := (src, v) :: !answers)
      reach
  done;
  List.sort_uniq compare !answers

let check_rpq (gr, re) =
  let dfa = Automata.Dfa.of_regex re in
  let fast = Graphdb.Rpq.eval dfa gr in
  let naive = naive_rpq dfa gr in
  let* () =
    if fast = naive then Ok ()
    else
      failf "Rpq.eval ≠ naive fixpoint for %s: %d vs %d answers"
        (Automata.Regex.to_string re) (List.length fast) (List.length naive)
  in
  let budget =
    Core.Budget.create ~fuel:(1 + Graphdb.Graph.node_count gr) ()
  in
  match Graphdb.Rpq.eval_within budget dfa gr with
  | Core.Budget.Done l ->
      if l = fast then Ok ()
      else failf "eval_within Done disagrees with eval"
  | Core.Budget.Exhausted { partial; _ } -> (
      match partial with
      | None -> Ok ()
      | Some l ->
          if subset l fast then Ok ()
          else failf "eval_within partial answers are not a subset of eval")

let rpq_naive =
  Spec
    { name = "rpq-naive";
      about = "Rpq.eval ≡ naive product-automaton fixpoint; partials ⊆ full";
      generate =
        (fun g ~size ->
          (Gen.graph g ~size:(max 2 size), Gen.regex g ~size:(max 2 (size / 2))));
      check = check_rpq;
      candidates =
        (fun (gr, re) ->
          List.map (fun gr' -> (gr', re)) (Shrink.graph gr)
          @ List.map (fun re' -> (gr, re')) (Shrink.regex re));
      print =
        (fun (gr, re) ->
          Printf.sprintf "graph: %s\nrpq: %s" (pstr Graphdb.Graph.pp gr)
            (Automata.Regex.to_string re));
      size_of =
        (fun (gr, re) ->
          Graphdb.Graph.node_count gr + Graphdb.Graph.edge_count gr
          + Automata.Regex.size re);
    }

(* ------------------------------------------------------------------ *)
(* Round-trips: parse ∘ print ≡ id                                     *)
(* ------------------------------------------------------------------ *)

let roundtrip_twig =
  Spec
    { name = "roundtrip-twig";
      about = "Twig.Parse.query ∘ Query.to_string ≡ id";
      generate = (fun g ~size -> Gen.twig g ~size:(max 1 size));
      check =
        (fun q ->
          let s = Query.to_string q in
          match Twig.Parse.query_result s with
          | Error e ->
              failf "printed query %S does not parse: %s" s
                (Core.Error.to_string e)
          | Ok q' ->
              if Query.equal q q' then Ok ()
              else failf "%S reparses as %S" s (Query.to_string q'));
      candidates = Shrink.twig;
      print = Query.to_string;
      size_of = Query.size;
    }

let roundtrip_xml =
  Spec
    { name = "roundtrip-xml";
      about = "Xmltree.Parse.xml ∘ Print.to_xml ≡ id (indented and inline)";
      generate = (fun g ~size -> Gen.xml_tree g ~size:(max 1 size));
      check =
        (fun t ->
          check_all
            (fun indent ->
              let s = Xmltree.Print.to_xml ~indent t in
              match Xmltree.Parse.xml_result s with
              | Error e ->
                  failf "printed XML (indent %d) does not parse: %s\n%s" indent
                    (Core.Error.to_string e) s
              | Ok t' ->
                  if Tree.equal t t' then Ok ()
                  else
                    failf "indent %d: %s reparses as %s" indent
                      (Tree.to_string t) (Tree.to_string t'))
            [ 2; 0 ]);
      candidates = Shrink.tree;
      print = (fun t -> Xmltree.Print.to_xml t);
      size_of = Tree.size;
    }

let roundtrip_csv =
  Spec
    { name = "roundtrip-csv";
      about = "Relational.Csv.parse ∘ to_string ≡ id";
      generate =
        (fun g ~size ->
          Gen.relation g ~name:"t" ~rows:(max 1 (size / 2)));
      check =
        (fun r ->
          let s = Relational.Csv.to_string r in
          match
            Relational.Csv.parse_result ~name:(Relational.Relation.name r) s
          with
          | Error e ->
              failf "printed CSV does not parse: %s\n%s"
                (Core.Error.to_string e) s
          | Ok r' ->
              if Relational.Relation.equal_contents r r' then Ok ()
              else failf "CSV round-trip changed contents:\n%s" s);
      candidates = Shrink.relation;
      print = Relational.Csv.to_string;
      size_of =
        (fun r ->
          Relational.Relation.cardinal r * Relational.Relation.arity r);
    }

let schema_equal s1 s2 =
  Uschema.Schema.root s1 = Uschema.Schema.root s2
  &&
  let r1 = Uschema.Schema.rules s1 and r2 = Uschema.Schema.rules s2 in
  List.length r1 = List.length r2
  && List.for_all2
       (fun (h1, d1) (h2, d2) -> h1 = h2 && Uschema.Dme.equal d1 d2)
       r1 r2

let roundtrip_dms =
  Spec
    { name = "roundtrip-dms";
      about = "Uschema.Schema.parse ∘ to_string ≡ id";
      generate = (fun g ~size -> Gen.schema g ~size);
      check =
        (fun sch ->
          let s = Uschema.Schema.to_string sch in
          match Uschema.Schema.parse_result s with
          | Error e ->
              failf "printed schema does not parse: %s\n%s"
                (Core.Error.to_string e) s
          | Ok sch' ->
              if schema_equal sch sch' then Ok ()
              else failf "schema round-trip changed rules:\n%s" s);
      candidates = Shrink.schema;
      print = Uschema.Schema.to_string;
      size_of = Uschema.Schema.size;
    }

(* ------------------------------------------------------------------ *)
(* Schema semantics                                                    *)
(* ------------------------------------------------------------------ *)

let check_docgen_infer (sch, doc_seed) =
  let rng = Prng.create doc_seed in
  match Uschema.Docgen.generate ~rng sch with
  | None -> Ok () (* unproductive root: vacuously fine *)
  | Some d -> (
      let* () =
        match Uschema.Schema.validate sch d with
        | Ok () -> Ok ()
        | Error vs ->
            failf "Docgen output invalid for its schema: %s (%d violations)"
              (Tree.to_string d) (List.length vs)
      in
      let* () =
        if Uschema.Schema.valid sch { d with Tree.label = "zz" } then
          failf "root relabeled to zz still validates"
        else Ok ()
      in
      match Uschema.Infer.infer [ d ] with
      | None -> failf "Infer.infer returned None on one valid document"
      | Some inferred ->
          let* () =
            if Uschema.Schema.valid inferred d then Ok ()
            else
              failf "inferred schema rejects its own input %s"
                (Tree.to_string d)
          in
          (match Uschema.Infer.infer_disjunction_free [ d ] with
          | None -> failf "infer_disjunction_free returned None"
          | Some ms ->
              if Uschema.Schema.valid ms d then Ok ()
              else failf "MS-inferred schema rejects its own input"))

let docgen_infer =
  Spec
    { name = "docgen-infer";
      about = "Docgen output validates; Infer's schema accepts its input";
      generate =
        (fun g ~size -> (Gen.schema g ~size, Prng.int g max_int));
      check = check_docgen_infer;
      candidates =
        (fun (sch, seed) ->
          List.map (fun s -> (s, seed)) (Shrink.schema sch));
      print = (fun (sch, _) -> Uschema.Schema.to_string sch);
      size_of = (fun (sch, _) -> Uschema.Schema.size sch);
    }

let check_validate_agree (sch, t) =
  let* () =
    let ok = Uschema.Schema.valid sch t in
    let detailed = Result.is_ok (Uschema.Schema.validate sch t) in
    if ok = detailed then Ok ()
    else failf "valid=%b but validate says %b on %s" ok detailed
        (Tree.to_string t)
  in
  if Uschema.Schema.valid sch t && Tree.(t.label) <> "zz" then
    if Uschema.Schema.valid sch { t with Tree.label = "zz" } then
      failf "foreign root label accepted on %s" (Tree.to_string t)
    else Ok ()
  else Ok ()

let validate_agree =
  Spec
    { name = "validate-agree";
      about = "Schema.valid ≡ Schema.validate on conforming and mutated docs";
      generate =
        (fun g ~size ->
          let sch = Gen.schema g ~size in
          let doc =
            match Uschema.Docgen.generate ~rng:g sch with
            | Some d when Prng.bool g ->
                if Prng.bool g then d else Gen.mutant_doc g d
            | _ -> Gen.tree g ~size
          in
          (sch, doc));
      check = check_validate_agree;
      candidates =
        (fun (sch, t) ->
          List.map (fun t' -> (sch, t')) (Shrink.tree t)
          @ List.map (fun s -> (s, t)) (Shrink.schema sch));
      print =
        (fun (sch, t) ->
          Uschema.Schema.to_string sch ^ "\ndoc: " ^ Tree.to_string t);
      size_of = (fun (sch, t) -> Uschema.Schema.size sch + Tree.size t);
    }

(* ------------------------------------------------------------------ *)
(* parser-total: _result parsers never raise on junk or near-misses    *)
(* ------------------------------------------------------------------ *)

let check_parser_total inputs =
  check_all
    (fun s ->
      try
        ignore (Xmltree.Parse.xml_result s);
        ignore (Xmltree.Parse.term_result s);
        ignore (Twig.Parse.query_result s);
        ignore (Relational.Csv.parse_result ~name:"t" s);
        ignore (Uschema.Schema.parse_result s);
        Ok ()
      with e -> failf "a _result parser raised %s on %S" (Printexc.to_string e) s)
    inputs

let parser_total =
  Spec
    { name = "parser-total";
      about = "all _result parsers are total on junk and mutated valid prints";
      generate =
        (fun g ~size ->
          let size = max 4 size in
          let mutated print = Gen.mutate_string g (print ()) in
          [ Gen.junk g ~size:(4 * size);
            mutated (fun () ->
                Xmltree.Print.to_xml (Gen.xml_tree g ~size));
            mutated (fun () -> Tree.to_string (Gen.xml_tree g ~size));
            mutated (fun () -> Query.to_string (Gen.twig g ~size));
            mutated (fun () ->
                Relational.Csv.to_string
                  (Gen.relation g ~name:"t" ~rows:(size / 2)));
            mutated (fun () ->
                Uschema.Schema.to_string (Gen.schema g ~size));
          ]);
      check = check_parser_total;
      candidates = Shrink.list_ Shrink.string_;
      print = (fun inputs -> String.concat "\n----\n" inputs);
      size_of =
        (fun inputs ->
          List.fold_left (fun n s -> n + String.length s) 0 inputs);
    }

(* ------------------------------------------------------------------ *)
(* http-incremental-parse: the mux's resumable parser, fed the same    *)
(* byte stream split at arbitrary fuzzed boundaries, produces exactly  *)
(* the whole-buffer parse_head+body result                             *)
(* ------------------------------------------------------------------ *)

(* The connection multiplexer sees a request in however many fragments
   the kernel hands it — a TCP segment boundary can fall anywhere,
   including mid-terminator and mid-Content-Length value.  The contract:
   the incremental parser's output (request sequence, sticky framing
   error, or "more bytes needed") is a pure function of the concatenated
   bytes, independent of where the cuts fall.  The reference below is an
   independent whole-buffer parser built directly on [Http.parse_head]. *)

type hp_case = {
  hp_stream : string;
  hp_cuts : int list;  (** split positions; clamped and deduped at use *)
}

(* Small caps so generated cases actually exercise the limits. *)
let hp_max_head = 512
let hp_max_body = 1024

type hp_final = Hp_err of string | Hp_pending of bool

let hp_term s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, 2)
    else if
      i + 3 < n
      && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i, 4)
    else go (i + 1)
  in
  go 0

let rec hp_reference acc s =
  match hp_term s with
  | None ->
      if String.length s > hp_max_head then
        (List.rev acc, Hp_err "request head too large")
      else (List.rev acc, Hp_pending (String.length s > 0))
  | Some (i, tlen) -> (
      if i > hp_max_head then (List.rev acc, Hp_err "request head too large")
      else
        match Server.Http.parse_head (String.sub s 0 i) with
        | Error msg -> (List.rev acc, Hp_err msg)
        | Ok req -> (
            let cl =
              match Server.Http.header "content-length" req with
              | None -> Ok 0
              | Some v -> (
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> Ok n
                  | _ -> Error (Printf.sprintf "bad content-length %S" v))
            in
            match cl with
            | Error msg -> (List.rev acc, Hp_err msg)
            | Ok len when len > hp_max_body ->
                (List.rev acc, Hp_err "request body too large")
            | Ok len ->
                if String.length s < i + tlen + len then
                  (List.rev acc, Hp_pending true)
                else
                  let body = String.sub s (i + tlen) len in
                  let req = { req with Server.Http.body } in
                  let rest_off = i + tlen + len in
                  hp_reference (req :: acc)
                    (String.sub s rest_off (String.length s - rest_off))))

let hp_drive stream cuts =
  let n = String.length stream in
  let cuts =
    List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cuts)
  in
  let bounds = (0 :: cuts) @ [ n ] in
  let p =
    Server.Http.incremental ~max_head:hp_max_head ~max_body:hp_max_body ()
  in
  let reqs = ref [] and err = ref None in
  let rec drain () =
    match Server.Http.step p with
    | `Request r ->
        reqs := r :: !reqs;
        drain ()
    | `More -> ()
    | `Error m -> err := Some m
  in
  let rec chunks = function
    | a :: (b :: _ as rest) ->
        if !err = None then begin
          Server.Http.feed p (String.sub stream a (b - a));
          drain ()
        end;
        chunks rest
    | _ -> ()
  in
  chunks bounds;
  ( List.rev !reqs,
    match !err with
    | Some m -> Hp_err m
    | None -> Hp_pending (Server.Http.pending p > 0) )

let hp_show_final = function
  | Hp_err m -> Printf.sprintf "error %S" m
  | Hp_pending b -> Printf.sprintf "pending %b" b

let check_http_incremental { hp_stream; hp_cuts } =
  let ref_reqs, ref_final = hp_reference [] hp_stream in
  let inc_reqs, inc_final = hp_drive hp_stream hp_cuts in
  if ref_reqs <> inc_reqs then
    failf "split parse saw %d requests, whole-buffer saw %d (cuts %s)"
      (List.length inc_reqs) (List.length ref_reqs)
      (String.concat "," (List.map string_of_int hp_cuts))
  else if ref_final <> inc_final then
    failf "split parse ended with %s, whole-buffer with %s (cuts %s)"
      (hp_show_final inc_final) (hp_show_final ref_final)
      (String.concat "," (List.map string_of_int hp_cuts))
  else Ok ()

let hp_generate g ~size =
  let size = max 2 size in
  let buf = Buffer.create 256 in
  let n_reqs = Prng.int_in g 0 3 in
  for _ = 1 to n_reqs do
    let meth = Prng.pick g [ "GET"; "POST"; "DELETE"; "PUT" ] in
    let path =
      Prng.pick g
        [ "/healthz"; "/stats"; "/v1/sessions"; "/v1/sessions/s1";
          "/v1/sessions/s1/answers" ]
    in
    let crlf = if Prng.bool g then "\r\n" else "\n" in
    let body =
      if Prng.bool g then String.make (Prng.int_in g 0 (4 * size)) 'b'
      else ""
    in
    Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1%s" meth path crlf);
    if Prng.bool g then
      Buffer.add_string buf ("x-learnq-tenant: t" ^ crlf);
    if body <> "" || Prng.bool g then begin
      (* Occasionally lie about the length: a long claim swallows the
         next request into this body, a short one leaves stray bytes —
         both must split-parse identically to the whole-buffer result. *)
      let claimed =
        if Prng.int_in g 0 7 = 0 then
          Prng.int_in g 0 (String.length body + 8)
        else String.length body
      in
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d%s" claimed crlf)
    end;
    Buffer.add_string buf crlf;
    Buffer.add_string buf body
  done;
  (* Often leave a trailing partial request — the parser must report
     "more bytes needed", never an error, on a valid prefix. *)
  if Prng.bool g then begin
    let tail = "POST /v1/sessions HTTP/1.1\r\ncontent-length: 5\r\n\r\nhi" in
    Buffer.add_string buf
      (String.sub tail 0 (Prng.int_in g 0 (String.length tail)))
  end;
  let stream = Buffer.contents buf in
  let stream =
    match Prng.int_in g 0 5 with
    | 0 -> Gen.mutate_string g stream
    | 1 when stream = "" -> Gen.junk g ~size
    | _ -> stream
  in
  let n_cuts = Prng.int_in g 0 8 in
  let cuts =
    List.init n_cuts (fun _ ->
        Prng.int_in g 0 (max 1 (String.length stream)))
  in
  { hp_stream = stream; hp_cuts = cuts }

let http_incremental_parse =
  Spec
    { name = "http-incremental-parse";
      about =
        "incremental HTTP parse at fuzzed split points ≡ whole-buffer \
         parse_head+body";
      generate = hp_generate;
      check = check_http_incremental;
      candidates =
        (fun { hp_stream; hp_cuts } ->
          List.map
            (fun cuts -> { hp_stream; hp_cuts = cuts })
            (Shrink.list_ (fun _ -> []) hp_cuts)
          @ List.map
              (fun s -> { hp_stream = s; hp_cuts })
              (Shrink.string_ hp_stream));
      print =
        (fun { hp_stream; hp_cuts } ->
          Printf.sprintf "cuts: %s\nstream: %S"
            (String.concat "," (List.map string_of_int hp_cuts))
            hp_stream);
      size_of = (fun { hp_stream; _ } -> String.length hp_stream);
    }

(* ------------------------------------------------------------------ *)
(* server-crash-resume: a registry crashed mid-session and recovered   *)
(* from its journals learns the same query as one never interrupted    *)
(* ------------------------------------------------------------------ *)

(* The chaos contract of `learnq serve`: under per-item-deterministic
   client faults (the same question always draws the same refusal /
   timeout / noisy label), killing the registry after [k] answers and
   recovering from the state directory must converge to exactly the query
   an uninterrupted run learns.  Refused items return to the pool on
   resume and are re-refused identically, so the labeled sequence — and
   hence the final candidate — is invariant under the crash point. *)

type serve_case = {
  sc_spec : Server.Engines.spec;
  sc_goal : string;
  sc_crash_after : int;  (** answers delivered before the in-process kill *)
  sc_noise : int;  (** permille *)
  sc_refusal : int;  (** permille *)
  sc_timeout : int;  (** permille *)
  sc_sync : Core.Journal.sync;
}

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      match Sys.readdir path with
      | entries ->
          Array.iter
            (fun e ->
              try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
            entries;
          (try Unix.rmdir path with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ())
    (fun () -> f path)

(* A client whose reply to a question is a pure function of the question:
   crash and re-ask as often as you like, the answer never changes. *)
let serve_client c truth key =
  let g = Prng.create (c.sc_spec.Server.Engines.seed lxor Hashtbl.hash key) in
  let roll = Prng.int g 1000 in
  if roll < c.sc_refusal then Core.Flaky.Refused
  else if roll < c.sc_refusal + c.sc_timeout then Core.Flaky.Timed_out
  else
    let label = truth key in
    Core.Flaky.Label
      (if Prng.int g 1000 < c.sc_noise then not label else label)

let serve_registry ?(vfs = Core.Vfs.real) ?(checkpoint_every = 0)
    ?(max_live = 0) ~dir ~sync () =
  Server.Registry.create
    {
      Server.Registry.dir;
      sync;
      tenants = Server.Tenant.make [];
      step_fuel = None;
      step_timeout = None;
      vfs;
      checkpoint_every;
      max_live;
      idle_evict_after = 0.;
    }

(* Answer questions until the session finishes or [stop_after] answers
   have been delivered; returns the answers delivered and the final
   query. *)
let serve_drive stepper client ~stop_after =
  let rec go n =
    let v = stepper.Server.Stepper.view () in
    if v.Server.Stepper.done_ then Ok (n, v.Server.Stepper.query)
    else if n >= stop_after then Ok (n, v.Server.Stepper.query)
    else
      match v.Server.Stepper.question with
      | None -> Ok (n, v.Server.Stepper.query)
      | Some key -> (
          match
            stepper.Server.Stepper.answer ~qid:v.Server.Stepper.qid
              (client key)
          with
          | Ok _ -> go (n + 1)
          | Error e ->
              failf "stepper rejected answer %d for %s: %s" v.Server.Stepper.qid
                key (Core.Error.to_string e))
  in
  go 0

let check_server_crash_resume ?(checkpoint_every = 0) c =
  match Server.Engines.oracle c.sc_spec ~goal:c.sc_goal with
  | Error e -> failf "bad goal for spec: %s" (Core.Error.to_string e)
  | Ok truth -> (
      let client = serve_client c truth in
      (* Reference: one registry, never interrupted, never compacted. *)
      let reference =
        with_temp_dir "learnq-fuzz-serve-ref" (fun dir ->
            let reg = serve_registry ~dir ~sync:Core.Journal.Off () in
            Fun.protect
              ~finally:(fun () -> Server.Registry.drain reg)
              (fun () ->
                match
                  Server.Registry.create_session reg ~tenant:"fuzz" ~id:"s"
                    c.sc_spec
                with
                | Error e -> failf "create: %s" (Core.Error.to_string e)
                | Ok _ -> (
                    match Server.Registry.find reg ~tenant:"fuzz" ~id:"s" with
                    | None -> failf "session vanished after create"
                    | Some st -> serve_drive st client ~stop_after:max_int)))
      in
      match reference with
      | Error _ as e -> e
      | Ok (_, ref_query) ->
          with_temp_dir "learnq-fuzz-serve" (fun dir ->
              (* Phase 1: crash after [k] answers. *)
              let reg1 = serve_registry ~checkpoint_every ~dir ~sync:c.sc_sync () in
              let phase1 =
                match
                  Server.Registry.create_session reg1 ~tenant:"fuzz" ~id:"s"
                    c.sc_spec
                with
                | Error e -> failf "create: %s" (Core.Error.to_string e)
                | Ok _ -> (
                    match Server.Registry.find reg1 ~tenant:"fuzz" ~id:"s" with
                    | None -> failf "session vanished after create"
                    | Some st ->
                        serve_drive st client ~stop_after:c.sc_crash_after)
              in
              match phase1 with
              | Error _ as e -> e
              | Ok _ -> (
                  Server.Registry.crash reg1;
                  (* Phase 2: a fresh registry recovers the directory and
                     finishes the session. *)
                  let reg2 = serve_registry ~checkpoint_every ~dir ~sync:c.sc_sync () in
                  let pool = Core.Pool.create 1 in
                  let recovered, errors =
                    Fun.protect
                      ~finally:(fun () -> Core.Pool.shutdown pool)
                      (fun () -> Server.Registry.recover_all reg2 ~pool)
                  in
                  match errors with
                  | (f, e) :: _ ->
                      failf "recovery of %s failed: %s" f
                        (Core.Error.to_string e)
                  | [] ->
                      if recovered <> 1 then
                        failf "lost the session: recovered %d of 1" recovered
                      else
                        Fun.protect
                          ~finally:(fun () -> Server.Registry.drain reg2)
                          (fun () ->
                            match
                              Server.Registry.find reg2 ~tenant:"fuzz" ~id:"s"
                            with
                            | None -> failf "recovered session not findable"
                            | Some st -> (
                                match
                                  serve_drive st client ~stop_after:max_int
                                with
                                | Error _ as e -> e
                                | Ok (_, resumed_query) ->
                                    if resumed_query = ref_query then Ok ()
                                    else
                                      failf
                                        "crash at %d answers diverged:\n\
                                         uninterrupted: %s\n\
                                         resumed:       %s"
                                        c.sc_crash_after
                                        (Option.value ~default:"<none>"
                                           ref_query)
                                        (Option.value ~default:"<none>"
                                           resumed_query))))))

let server_crash_resume =
  Spec
    { name = "server-crash-resume";
      about =
        "a session server killed after k answers recovers from its journals \
         to the same learned query";
      generate =
        (fun g ~size ->
          let engine = Prng.pick g [ "twig"; "join"; "path" ] in
          let spec =
            {
              Server.Engines.engine;
              seed = Prng.int g 1_000_000;
              scale = 0.02 +. (0.002 *. float_of_int (min 20 size));
              rows = Prng.int_in g 4 7;
              cities = Prng.int_in g 5 8;
            }
          in
          let goal =
            match engine with
            | "twig" -> Prng.pick g [ "//item"; "//person/name"; "//keyword" ]
            | "join" -> "planted"
            | _ -> Prng.pick g [ "highway*"; "road highway*"; "ferry?road*" ]
          in
          {
            sc_spec = spec;
            sc_goal = goal;
            sc_crash_after = Prng.int g 25;
            sc_noise = Prng.int g 150;
            sc_refusal = Prng.int g 200;
            sc_timeout = Prng.int g 100;
            sc_sync = Prng.pick g [ Core.Journal.Always; Core.Journal.Batch ];
          });
      check = (fun c -> check_server_crash_resume c);
      candidates =
        (fun c ->
          let halve n = n / 2 in
          List.concat
            [
              (if c.sc_crash_after > 0 then
                 [ { c with sc_crash_after = halve c.sc_crash_after } ]
               else []);
              (if c.sc_noise > 0 then [ { c with sc_noise = 0 } ] else []);
              (if c.sc_refusal > 0 then [ { c with sc_refusal = 0 } ] else []);
              (if c.sc_timeout > 0 then [ { c with sc_timeout = 0 } ] else []);
              (if c.sc_sync <> Core.Journal.Always then
                 [ { c with sc_sync = Core.Journal.Always } ]
               else []);
            ]);
      print =
        (fun c ->
          Printf.sprintf
            "spec: %s\ngoal: %s\ncrash_after: %d\nnoise/refusal/timeout: \
             %d/%d/%d permille\nsync: %s"
            (Server.Engines.config_of_spec c.sc_spec)
            c.sc_goal c.sc_crash_after c.sc_noise c.sc_refusal c.sc_timeout
            (Core.Journal.sync_to_string c.sc_sync));
      size_of =
        (fun c ->
          c.sc_crash_after + c.sc_spec.Server.Engines.rows
          + c.sc_spec.Server.Engines.cities);
    }

(* ------------------------------------------------------------------ *)

(* The same chaos contract with checkpoint compaction in the loop: with
   --checkpoint-every k the journal is periodically snapshotted and
   compacted down to header + checkpoint, so recovery restores the
   snapshot and replays only the tail — and must still converge to
   exactly the query the uninterrupted (checkpoint-free) run learns.
   This drives Journal.compact, split_checkpoint, and all three engine
   state codecs through arbitrary crash points. *)

type ck_case = { ck_base : serve_case; ck_every : int }

let journal_checkpoint_resume =
  Spec
    { name = "journal-checkpoint-resume";
      about =
        "a crashed session that checkpointed and compacted its journal \
         resumes from the snapshot to the same learned query";
      generate =
        (fun g ~size ->
          let engine = Prng.pick g [ "twig"; "join"; "path" ] in
          let spec =
            {
              Server.Engines.engine;
              seed = Prng.int g 1_000_000;
              scale = 0.02 +. (0.002 *. float_of_int (min 20 size));
              rows = Prng.int_in g 4 7;
              cities = Prng.int_in g 5 8;
            }
          in
          let goal =
            match engine with
            | "twig" -> Prng.pick g [ "//item"; "//person/name"; "//keyword" ]
            | "join" -> "planted"
            | _ -> Prng.pick g [ "highway*"; "road highway*"; "ferry?road*" ]
          in
          {
            ck_base =
              {
                sc_spec = spec;
                sc_goal = goal;
                sc_crash_after = Prng.int g 25;
                sc_noise = Prng.int g 150;
                sc_refusal = Prng.int g 200;
                sc_timeout = Prng.int g 100;
                sc_sync =
                  Prng.pick g [ Core.Journal.Always; Core.Journal.Batch ];
              };
            ck_every = Prng.int_in g 1 5;
          });
      check =
        (fun c ->
          check_server_crash_resume ~checkpoint_every:c.ck_every c.ck_base);
      candidates =
        (fun c ->
          let b = c.ck_base in
          List.concat
            [
              (if b.sc_crash_after > 0 then
                 [ { c with
                     ck_base = { b with sc_crash_after = b.sc_crash_after / 2 }
                   } ]
               else []);
              (if b.sc_noise > 0 then
                 [ { c with ck_base = { b with sc_noise = 0 } } ]
               else []);
              (if b.sc_refusal > 0 then
                 [ { c with ck_base = { b with sc_refusal = 0 } } ]
               else []);
              (if b.sc_timeout > 0 then
                 [ { c with ck_base = { b with sc_timeout = 0 } } ]
               else []);
              (if c.ck_every > 1 then [ { c with ck_every = 1 } ] else []);
            ]);
      print =
        (fun c ->
          Printf.sprintf
            "spec: %s\ngoal: %s\ncrash_after: %d\ncheckpoint_every: %d\n\
             noise/refusal/timeout: %d/%d/%d permille\nsync: %s"
            (Server.Engines.config_of_spec c.ck_base.sc_spec)
            c.ck_base.sc_goal c.ck_base.sc_crash_after c.ck_every
            c.ck_base.sc_noise c.ck_base.sc_refusal c.ck_base.sc_timeout
            (Core.Journal.sync_to_string c.ck_base.sc_sync));
      size_of =
        (fun c ->
          c.ck_base.sc_crash_after + c.ck_base.sc_spec.Server.Engines.rows
          + c.ck_base.sc_spec.Server.Engines.cities);
    }

(* ------------------------------------------------------------------ *)

(* The journal's torn-write contract against the fault-injecting storage
   backend: append records through a Vfs scripted with short writes,
   lying fsyncs, and torn crash truncation, pull the plug, and recover.
   Whatever survives must be a clean prefix of what was appended — a tear
   is truncation, never corruption — and under [Always] sync with honest
   fsyncs, every successfully appended record must survive. *)

type torn_case = {
  tw_seed : int;
  tw_records : int;
  tw_short : int;  (** permille *)
  tw_lying : int;  (** permille *)
  tw_torn : int;  (** permille *)
  tw_sync : Core.Journal.sync;
}

let check_vfs_torn_write c =
  with_temp_dir "learnq-fuzz-torn" (fun dir ->
      let path = Filename.concat dir "t.journal" in
      let disk =
        Core.Flaky.disk
          ~short_write:(float_of_int c.tw_short /. 1000.)
          ~lying_fsync:(float_of_int c.tw_lying /. 1000.)
          ~torn:(float_of_int c.tw_torn /. 1000.)
          ()
      in
      let vfs = Core.Vfs.faulty ~seed:c.tw_seed disk in
      let event i =
        if i mod 2 = 0 then Core.Journal.Asked (Printf.sprintf "item-%d" i)
        else
          Core.Journal.Answered
            ( Printf.sprintf "item-%d" (i - 1),
              Core.Flaky.Label (i mod 4 = 1) )
      in
      let created =
        Core.Journal.create_result ~sync:c.tw_sync ~vfs ~path
          { Core.Journal.seed = c.tw_seed;
            engine = "fuzz";
            config = "vfs-torn-write" }
      in
      (* Append until done or the scripted disk refuses; the refusal point
         is the crash point. *)
      let appended =
        match created with
        | Error _ -> []
        | Ok j ->
            let rec go i acc =
              if i >= c.tw_records then acc
              else
                let ev = event i in
                match Core.Journal.append j ev with
                | () -> go (i + 1) (ev :: acc)
                | exception Core.Journal.Io _ -> acc
            in
            let acc = go 0 [] in
            Core.Vfs.crash vfs;
            (* Release the (still live-process) lock; the file itself stays
               exactly as the crash left it. *)
            Core.Journal.abort j;
            List.rev acc
      in
      let is_prefix evs =
        let rec go = function
          | [], _ -> true
          | _ :: _, [] -> false
          | e :: es, a :: as_ -> e = a && go (es, as_)
        in
        go (evs, appended)
      in
      match Core.Journal.recover ~path with
      | Error (Core.Error.Corrupt_journal { offset; message; _ }) ->
          failf "torn write surfaced as corruption at %d: %s" offset message
      | Error (Core.Error.Parse { message; _ }) ->
          failf "torn write broke the journal framing: %s" message
      | Error _ -> Ok () (* e.g. the file never came into being *)
      | Ok r ->
          if not (is_prefix r.Core.Journal.events) then
            failf "recovered %d events are not a prefix of the %d appended"
              (List.length r.Core.Journal.events)
              (List.length appended)
          else if
            c.tw_sync = Core.Journal.Always
            && c.tw_lying = 0
            && Result.is_ok created
            && List.length r.Core.Journal.events < List.length appended
          then
            failf
              "Always-sync with honest fsyncs lost %d of %d appended \
               records to the crash"
              (List.length appended - List.length r.Core.Journal.events)
              (List.length appended)
          else Ok ())

let vfs_torn_write =
  Spec
    { name = "vfs-torn-write";
      about =
        "a journal crashed mid-write through the fault-injecting storage \
         backend recovers a clean prefix — torn tails truncate, never \
         corrupt, and fsynced records survive";
      generate =
        (fun g ~size ->
          {
            tw_seed = Prng.int g 1_000_000;
            tw_records = Prng.int_in g 1 (max 2 (min 60 (4 * size)));
            tw_short = Prng.int g 200;
            tw_lying = (if Prng.int g 2 = 0 then 0 else Prng.int g 300);
            tw_torn = Prng.int g 500;
            tw_sync =
              Prng.pick g
                [ Core.Journal.Always; Core.Journal.Batch; Core.Journal.Off ];
          });
      check = check_vfs_torn_write;
      candidates =
        (fun c ->
          List.concat
            [
              (if c.tw_records > 1 then
                 [ { c with tw_records = c.tw_records / 2 } ]
               else []);
              (if c.tw_short > 0 then [ { c with tw_short = 0 } ] else []);
              (if c.tw_lying > 0 then [ { c with tw_lying = 0 } ] else []);
              (if c.tw_torn > 0 then [ { c with tw_torn = 0 } ] else []);
              (if c.tw_sync <> Core.Journal.Always then
                 [ { c with tw_sync = Core.Journal.Always } ]
               else []);
            ]);
      print =
        (fun c ->
          Printf.sprintf
            "seed: %d\nrecords: %d\nshort/lying/torn: %d/%d/%d permille\n\
             sync: %s"
            c.tw_seed c.tw_records c.tw_short c.tw_lying c.tw_torn
            (Core.Journal.sync_to_string c.tw_sync));
      size_of = (fun c -> c.tw_records);
    }

(* ------------------------------------------------------------------ *)
(* telemetry-transparency: observability must not perturb learning     *)
(* ------------------------------------------------------------------ *)

(* The observability PR's contract: traces, the flight recorder, and
   telemetry are {e pure observers}.  Driving the same session with
   everything on (recorder recording, a trace installed, telemetry
   enabled) and with everything off must produce the identical question
   transcript, the identical learned query, and byte-identical journals.
   Stepper journal entries carry no timestamps, so any divergence means
   an observer leaked into the learning or persistence path. *)

let tt_drive stepper client =
  let keys = ref [] in
  let rec go () =
    let v = stepper.Server.Stepper.view () in
    if v.Server.Stepper.done_ then Ok (List.rev !keys, v.Server.Stepper.query)
    else
      match v.Server.Stepper.question with
      | None -> Ok (List.rev !keys, v.Server.Stepper.query)
      | Some key -> (
          keys := key :: !keys;
          match
            stepper.Server.Stepper.answer ~qid:v.Server.Stepper.qid
              (client key)
          with
          | Ok _ -> go ()
          | Error e ->
              failf "stepper rejected answer %d for %s: %s"
                v.Server.Stepper.qid key (Core.Error.to_string e))
  in
  go ()

let read_file_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One full session in a fresh state directory; returns
   (question transcript, final query, raw journal bytes). *)
let tt_run c client ~observe =
  with_temp_dir "learnq-fuzz-tt" (fun dir ->
      let reg = serve_registry ~dir ~sync:c.sc_sync () in
      let body () =
        match
          Server.Registry.create_session reg ~tenant:"fuzz" ~id:"s" c.sc_spec
        with
        | Error e -> failf "create: %s" (Core.Error.to_string e)
        | Ok _ -> (
            match Server.Registry.find reg ~tenant:"fuzz" ~id:"s" with
            | None -> failf "session vanished after create"
            | Some st -> tt_drive st client)
      in
      let driven =
        Fun.protect
          ~finally:(fun () -> Server.Registry.drain reg)
          (fun () ->
            if observe then
              Core.Obs.Trace.with_trace "tt-fuzz-trace" body
            else body ())
      in
      match driven with
      | Error _ as e -> e
      | Ok (keys, query) ->
          let bytes = read_file_bytes (Filename.concat dir "fuzz.s.journal") in
          Ok (keys, query, bytes))

let check_telemetry_transparency c =
  match Server.Engines.oracle c.sc_spec ~goal:c.sc_goal with
  | Error e -> failf "bad goal for spec: %s" (Core.Error.to_string e)
  | Ok truth ->
  let client = serve_client c truth in
  (* Save and force the observability state around each run so the oracle
     composes with whatever the harness set up. *)
  let saved_tel = Core.Telemetry.enabled () in
  let saved_rec = Core.Obs.Recorder.is_recording () in
  Fun.protect
    ~finally:(fun () ->
      Core.Telemetry.set_enabled saved_tel;
      Core.Obs.Recorder.set_recording saved_rec)
    (fun () ->
      Core.Telemetry.set_enabled true;
      Core.Obs.Recorder.set_recording true;
      let on = tt_run c client ~observe:true in
      Core.Telemetry.set_enabled false;
      Core.Obs.Recorder.set_recording false;
      let off = tt_run c client ~observe:false in
      match (on, off) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok (keys_on, q_on, bytes_on), Ok (keys_off, q_off, bytes_off) ->
          if keys_on <> keys_off then
            failf "observability changed the question transcript (%d vs %d \
                   questions)"
              (List.length keys_on) (List.length keys_off)
          else if q_on <> q_off then
            failf "observability changed the learned query:\non:  %s\noff: %s"
              (Option.value ~default:"<none>" q_on)
              (Option.value ~default:"<none>" q_off)
          else if bytes_on <> bytes_off then
            failf "observability changed the journal bytes (%d vs %d bytes)"
              (String.length bytes_on) (String.length bytes_off)
          else Ok ())

let telemetry_transparency =
  Spec
    { name = "telemetry-transparency";
      about =
        "a session driven with tracing, flight recorder, and telemetry on \
         produces the same transcript, query, and journal bytes as with \
         everything off";
      generate =
        (fun g ~size ->
          let engine = Prng.pick g [ "twig"; "join"; "path" ] in
          let spec =
            {
              Server.Engines.engine;
              seed = Prng.int g 1_000_000;
              scale = 0.02 +. (0.002 *. float_of_int (min 20 size));
              rows = Prng.int_in g 4 7;
              cities = Prng.int_in g 5 8;
            }
          in
          let goal =
            match engine with
            | "twig" -> Prng.pick g [ "//item"; "//person/name"; "//keyword" ]
            | "join" -> "planted"
            | _ -> Prng.pick g [ "highway*"; "road highway*"; "ferry?road*" ]
          in
          {
            sc_spec = spec;
            sc_goal = goal;
            sc_crash_after = 0;
            sc_noise = Prng.int g 150;
            sc_refusal = Prng.int g 200;
            sc_timeout = Prng.int g 100;
            sc_sync = Prng.pick g [ Core.Journal.Always; Core.Journal.Batch ];
          });
      check = check_telemetry_transparency;
      candidates =
        (fun c ->
          List.concat
            [
              (if c.sc_noise > 0 then [ { c with sc_noise = 0 } ] else []);
              (if c.sc_refusal > 0 then [ { c with sc_refusal = 0 } ] else []);
              (if c.sc_timeout > 0 then [ { c with sc_timeout = 0 } ] else []);
              (if c.sc_sync <> Core.Journal.Always then
                 [ { c with sc_sync = Core.Journal.Always } ]
               else []);
            ]);
      print =
        (fun c ->
          Printf.sprintf
            "spec: %s\ngoal: %s\nnoise/refusal/timeout: %d/%d/%d permille\n\
             sync: %s"
            (Server.Engines.config_of_spec c.sc_spec)
            c.sc_goal c.sc_noise c.sc_refusal c.sc_timeout
            (Core.Journal.sync_to_string c.sc_sync));
      size_of =
        (fun c ->
          c.sc_spec.Server.Engines.rows + c.sc_spec.Server.Engines.cities);
    }

(* ------------------------------------------------------------------ *)
(* xmlstore-eval: index-backed twig evaluation (containment labels +   *)
(* inverted lists + structural joins) ≡ the tree-walk reference, plus  *)
(* store persistence round-trips byte-stably                           *)
(* ------------------------------------------------------------------ *)

let check_xmlstore_eval (t, qs) =
  let store = Xmlstore.Store.of_tree t in
  let paths = Tree.all_paths t in
  (* The store's path addressing must agree with the tree's. *)
  let* () =
    check_all
      (fun p ->
        match Xmlstore.Store.id_of_path store p with
        | None -> failf "id_of_path lost node %s" (pstr Tree.pp_path p)
        | Some id ->
            let p' = Xmlstore.Store.path_of_id store id in
            if p = p' then Ok ()
            else
              failf "path round trip %s -> %d -> %s" (pstr Tree.pp_path p) id
                (pstr Tree.pp_path p'))
      paths
  in
  (* Reload from bytes: same bytes out, same answers. *)
  let bytes = Xmlstore.Store.to_bytes store in
  match Xmlstore.Store.of_bytes bytes with
  | Error e -> failf "of_bytes(to_bytes store) failed: %s" e
  | Ok store' when not (Bytes.equal (Xmlstore.Store.to_bytes store') bytes) ->
      failf "persisted store is not byte-stable across a reload"
  | Ok store' ->
  check_all
    (fun q ->
      let pat = Twig.Eval.to_pattern q in
      let walked = Twig.Eval.select_walk q t in
      check_all
        (fun (tag, st) ->
          let indexed = Xmlstore.Twigjoin.select_paths st pat in
          if indexed <> walked then
            failf "%s: indexed [%s] but tree-walk [%s] for %s" tag
              (String.concat "; " (List.map (pstr Tree.pp_path) indexed))
              (String.concat "; " (List.map (pstr Tree.pp_path) walked))
              (Query.to_string q)
          else
            (* Per-node membership through the joined id set must match
               the walk at every node, not just on the selected list. *)
            let ids = Xmlstore.Twigjoin.select_array st pat in
            let mask = Array.make (Xmlstore.Store.size st) false in
            Array.iter (fun id -> mask.(id) <- true) ids;
            check_all
              (fun p ->
                let member =
                  match Xmlstore.Store.id_of_path st p with
                  | Some id -> mask.(id)
                  | None -> false
                in
                let walk_member = List.mem p walked in
                if member = walk_member then Ok ()
                else
                  failf "%s: membership %b but tree-walk %b at %s for %s" tag
                    member walk_member (pstr Tree.pp_path p)
                    (Query.to_string q))
              paths)
        [ ("fresh", store); ("reloaded", store') ])
    qs

let xmlstore_eval =
  Spec
    { name = "xmlstore-eval";
      about =
        "index-backed Twigjoin ≡ tree-walk Eval on random trees and twigs; \
         store round-trip is byte-stable";
      generate =
        (fun g ~size ->
          let t = Gen.tree g ~size:(max 2 size) in
          let qs =
            List.init 3 (fun _ ->
                if Prng.bool g then Gen.twig g ~size:(max 2 (size / 2))
                else Gen.anchored_twig g ~size:(max 2 (size / 2)))
          in
          (t, qs));
      check = check_xmlstore_eval;
      candidates =
        (fun (t, qs) ->
          List.map (fun t' -> (t', qs)) (Shrink.tree t)
          @ List.map (fun qs' -> (t, qs')) (Shrink.list_ Shrink.twig qs));
      print =
        (fun (t, qs) ->
          Tree.to_string t ^ "\n"
          ^ String.concat "\n" (List.map Query.to_string qs));
      size_of =
        (fun (t, qs) ->
          Tree.size t + List.fold_left (fun n q -> n + Query.size q) 0 qs);
    }

(* ------------------------------------------------------------------ *)

let all =
  [ eval_cache;
    xmlstore_eval;
    contain_cache;
    contain_vs_eval;
    lgg_incremental;
    interact_batch;
    interact_pool;
    journal_resume;
    rpq_naive;
    roundtrip_twig;
    roundtrip_xml;
    roundtrip_csv;
    roundtrip_dms;
    docgen_infer;
    validate_agree;
    parser_total;
    http_incremental_parse;
    server_crash_resume;
    journal_checkpoint_resume;
    vfs_torn_write;
    telemetry_transparency;
  ]

let find n = List.find_opt (fun o -> name o = n) all

(* Oracles that flip process-global switches (the batch-LGG ablation,
   the telemetry enable) or boot the in-process daemon cannot overlap
   other oracles without perturbing them; the parallel runner keeps
   these on the calling domain.  Everything else confines its state to
   locals, unique temp files, or Domain.DLS caches. *)
let serial_names =
  [ "interact-batch"; "telemetry-transparency"; "server-crash-resume" ]

let serial o = List.mem (name o) serial_names
