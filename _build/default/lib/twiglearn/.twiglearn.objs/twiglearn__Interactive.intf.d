lib/twiglearn/interactive.mli: Core Twig Xmltree
