(** The session table: every live learning session, keyed by
    [tenant/id], each backed by its own journal file in the state
    directory.

    Three invariants carry the server's fault-tolerance story:

    - {e journal-keyed}: a session's entire recoverable state is its
      journal ([<dir>/<tenant>.<id>.journal] — '.' cannot appear in a
      name, so the mapping is injective; the header's config line
      regenerates the instance, the events replay the answers, and the
      last checkpoint — if any — short-circuits the replay).  The
      registry holds only the in-memory stepper; {!recover_all} rebuilds
      the table from the directory after a crash.
    - {e idempotent creation}: re-creating an existing [tenant/id] with the
      same spec returns the live session's view (clients retry blindly); a
      different spec is a typed conflict.  A journal already on disk but
      not in memory is resumed, not truncated.
    - {e quota-checked}: a tenant at its [max_sessions] gets a typed
      [Over_quota] refusal, checked under the registry lock (with slots
      reserved during construction, so concurrent creates cannot
      overshoot).

    The storage PR adds three more:

    - {e bounded residency}: {!evict_idle} checkpoints, compacts, and
      closes sessions beyond [max_live] (LRU) or idle past
      [idle_evict_after]; {!find_or_resume} transparently resurrects an
      evicted session from its journal — exactly once per burst of
      concurrent requests (single-flight on the registry's build table).
    - {e corruption quarantine}: a journal failing CRC or decode is moved
      to [<name>.quarantine] (its stale lock removed) instead of crashing
      every recovery; {!stats} counts them.
    - {e fault-injectable storage}: every file operation goes through the
      config's {!Core.Vfs.t}, so the chaos harness can script ENOSPC, torn
      writes, and lying fsyncs against the whole session lifecycle.

    The lock covers table bookkeeping only; instance generation and replay
    run outside it.  Mutating one session concurrently is excluded by the
    {!Admission} batch discipline, not by this lock. *)

type config = {
  dir : string;  (** state directory (created on {!create}) *)
  sync : Core.Journal.sync;
  tenants : Tenant.t;
  step_fuel : int option;  (** server-wide per-step default *)
  step_timeout : float option;
  vfs : Core.Vfs.t;  (** storage backend ({!Core.Vfs.real} in production) *)
  checkpoint_every : int;
      (** checkpoint + compact each session every N labeled answers;
          0 = never *)
  max_live : int;
      (** {!evict_idle} keeps at most this many live steppers (LRU);
          0 = unlimited *)
  idle_evict_after : float;
      (** {!evict_idle} evicts sessions untouched this many seconds;
          0. = never *)
}

type stats = {
  live : int;
  evicted : int;  (** sessions checkpointed out by {!evict_idle} *)
  resumed : int;  (** sessions resurrected by {!find_or_resume} *)
  quarantined : int;  (** corrupt journals moved to [.quarantine] *)
}

type t

val create : config -> t
(** Creates [dir] if missing.  Does not scan it — call {!recover_all}. *)

val create_session :
  t -> tenant:string -> id:string -> Engines.spec ->
  (Stepper.view, Core.Error.t) result
(** See the idempotency and quota rules above.  [id] and [tenant] must be
    [[A-Za-z0-9_-]+] (they name files). *)

val find : t -> tenant:string -> id:string -> Stepper.t option
(** The live stepper (touching its LRU clock); callers must respect the
    one-thread-per-session batch discipline.  Does not look at disk — use
    {!find_or_resume} to see through eviction. *)

val find_or_resume :
  t -> tenant:string -> id:string -> (Stepper.t option, Core.Error.t) result
(** {!find}, falling back to resuming the session's journal from disk when
    the stepper was evicted.  Single-flight: a burst of concurrent requests
    for the same evicted key replays the journal exactly once, the rest
    wait and share the result.  [Ok None] when no such session exists
    anywhere; [Error] when the journal exists but cannot be resumed (a
    corrupt one is quarantined on the way out). *)

val evict_idle : t -> int
(** Checkpoint, compact, close, and drop sessions beyond the config's
    [max_live] (least-recently-used first) or idle past
    [idle_evict_after]; returns how many were evicted.  A victim whose
    checkpoint fails stays live (nothing is lost to a sick disk).  Call
    from the dispatcher between batches — never while a session is
    mid-answer. *)

val delete : t -> tenant:string -> id:string -> bool
(** Closes the session and removes its journal file — including a session
    that only exists on disk (evicted or never loaded).  [false] if absent
    everywhere. *)

val recover_all : t -> pool:Core.Pool.t -> int * (string * Core.Error.t) list
(** Resumes every journal in the directory not already live — in parallel
    on [pool] — and returns (sessions recovered, per-file errors).
    Corrupt journals are quarantined; other failures (locked, storage) are
    left in place and reported. *)

val drain : t -> unit
(** Flush and close every live journal (graceful-shutdown path). *)

val crash : t -> unit
(** Abort every journal without flushing — the in-process stand-in for
    kill -9, for the chaos harness. *)

val count : t -> int
val tenant_count : t -> string -> int

val stats : t -> stats
(** Live count plus lifetime eviction / resume / quarantine counters. *)

val fold : t -> init:'a -> f:('a -> tenant:string -> id:string -> Stepper.t -> 'a) -> 'a
(** Snapshot iteration (order unspecified) — for /stats. *)

type session_debug = {
  sd_tenant : string;
  sd_id : string;
  sd_engine : string;
  sd_done : bool;
  sd_degraded : bool;
  sd_qid : int;
  sd_open : bool;  (** a question is currently posed *)
  sd_questions : int;
  sd_replayed : int;
  sd_journal_bytes : int;  (** on-disk journal size (0 if unreadable) *)
  sd_idle_s : float;  (** seconds since the session was last touched *)
}

val debug_sessions : t -> session_debug list
(** Per-session introspection, sorted by [tenant/id] — the
    [/debug/sessions] view.  Built from {!Stepper.t.peek}, so it never
    touches a journal and is safe concurrently with the dispatcher; the
    numbers are weakly consistent. *)
