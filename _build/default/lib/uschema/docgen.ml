module SMap = Map.Make (String)

let count_for rng ~fanout ~cheap m =
  let lo, hi = Multiplicity.interval m in
  if cheap then lo
  else
    let hi = match hi with Some h -> min h fanout | None -> fanout in
    Core.Prng.int_in rng lo (max lo hi)

let infinity_height = max_int / 2

(* Minimal height of a valid subtree per label (least fixpoint); finite
   exactly for productive labels.  Guides the depth-capped expansion so
   recursion always descends toward termination. *)
let min_heights schema =
  let labels = Schema.labels schema in
  let height heights l =
    match SMap.find_opt l heights with
    | Some h -> h
    | None -> infinity_height
  in
  let clause_height heights c =
    List.fold_left
      (fun acc (l, m) ->
        if Multiplicity.nullable m then acc else max acc (height heights l))
      0 c
  in
  let step heights =
    List.fold_left
      (fun acc l ->
        let dme = Schema.rule schema l in
        let best =
          List.fold_left
            (fun best c -> min best (clause_height heights c))
            infinity_height dme
        in
        SMap.add l (if best >= infinity_height then infinity_height else 1 + best) acc)
      SMap.empty labels
  in
  let rec fix heights =
    let heights' = step heights in
    if SMap.equal Int.equal heights heights' then heights else fix heights'
  in
  fix SMap.empty

let subtree ~rng ?(max_depth = 8) ?(fanout = 3) schema ~label =
  let heights = min_heights schema in
  let height l =
    match SMap.find_opt l heights with
    | Some h -> h
    | None -> infinity_height
  in
  if height label >= infinity_height then None
  else
    let clause_height c =
      List.fold_left
        (fun acc (l, m) ->
          if Multiplicity.nullable m then acc else max acc (height l))
        0 c
    in
    let rec build depth label =
      let dme = Schema.rule schema label in
      let usable =
        List.filter (fun c -> clause_height c < infinity_height) dme
      in
      match usable with
      | [] -> None
      | _ ->
          (* Once the minimal completion would not fit under the cap with a
             random clause, switch to the cheapest clause and minimal
             counts: the height map guarantees strict descent. *)
          let budget = max_depth - depth in
          let cheap = height label + 1 >= budget in
          let clause =
            if cheap then
              List.fold_left
                (fun best c ->
                  if clause_height c < clause_height best then c else best)
                (List.hd usable) (List.tl usable)
            else Core.Prng.pick rng usable
          in
          let children =
            List.concat_map
              (fun (l, m) ->
                let n = count_for rng ~fanout ~cheap m in
                List.init n (fun _ -> l))
              clause
          in
          let rec expand acc = function
            | [] -> Some (List.rev acc)
            | l :: rest -> (
                match build (depth + 1) l with
                | None -> None
                | Some t -> expand (t :: acc) rest)
          in
          Option.map
            (fun kids -> Xmltree.Tree.node label kids)
            (expand [] children)
    in
    if height label > max_depth then None else build 0 label

let generate ~rng ?max_depth ?fanout schema =
  subtree ~rng ?max_depth ?fanout schema ~label:(Schema.root schema)
