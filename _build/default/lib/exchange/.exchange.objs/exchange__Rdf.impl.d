lib/exchange/rdf.ml: Array Format Graphdb List Set String Xmltree
