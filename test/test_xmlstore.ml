(* Tests for lib/xmlstore: the containment-interval labeling, the inverted
   name lists, the LQXSTORE persistent layout, the holistic twig join
   against the reference tree walk, and sharded-corpus determinism. *)

module Tree = Xmltree.Tree
module Store = Xmlstore.Store
module Twigjoin = Xmlstore.Twigjoin
module Corpus = Xmlstore.Corpus

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let doc =
  Tree.node "site"
    [
      Tree.node "people"
        [
          Tree.node "person"
            [ Tree.leaf "name"; Tree.node "profile" [ Tree.leaf "education" ] ];
          Tree.node "person" [ Tree.leaf "name" ];
        ];
      Tree.node "regions" [ Tree.node "person" [ Tree.leaf "name" ] ];
    ]

(* A generated tree of a given size and seed, via the fuzz generators. *)
let gen_tree ~seed ~size = Fuzz.Gen.tree (Core.Prng.create seed) ~size

let is_path_prefix p q =
  let rec go p q =
    match (p, q) with
    | [], _ :: _ -> true
    | x :: p', y :: q' -> x = y && go p' q'
    | _, [] -> false
  in
  go p q

(* ------------------------------------------------------------------ *)
(* Labeling invariants                                                 *)
(* ------------------------------------------------------------------ *)

let test_labeling_small () =
  let s = Store.of_tree doc in
  check Alcotest.int "size" (Tree.size doc) (Store.size s);
  check Alcotest.string "root label" "site" (Store.label s 0);
  check Alcotest.int "root parent" (-1) (Store.parent s 0);
  check Alcotest.int "root level" 0 (Store.level s 0);
  check Alcotest.int "root interval covers all"
    (Store.size s - 1)
    (Store.last s 0)

(* is_ancestor through the intervals must coincide with proper path
   prefixing, on every ordered pair of nodes. *)
let prop_intervals_are_ancestry =
  QCheck.Test.make ~name:"interval nesting = path-prefix ancestry" ~count:60
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, size) ->
      let t = gen_tree ~seed ~size in
      let s = Store.of_tree t in
      let n = Store.size s in
      let path = Array.init n (Store.path_of_id s) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for d = 0 to n - 1 do
          let by_interval = Store.is_ancestor s a d in
          let by_path = is_path_prefix path.(a) path.(d) in
          if by_interval <> by_path then ok := false
        done
      done;
      !ok)

let prop_levels_and_parents =
  QCheck.Test.make ~name:"level = path length; parent drops one step"
    ~count:60
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, size) ->
      let t = gen_tree ~seed ~size in
      let s = Store.of_tree t in
      let n = Store.size s in
      let ok = ref true in
      for i = 0 to n - 1 do
        let p = Store.path_of_id s i in
        if Store.level s i <> List.length p then ok := false;
        (match (Store.parent s i, Tree.parent_path p) with
        | -1, None -> ()
        | pid, Some pp when pid >= 0 && Store.path_of_id s pid = pp -> ()
        | _ -> ok := false);
        if not (Store.is_child s (Store.parent s i) i) && i > 0 then
          ok := false
      done;
      !ok)

let prop_path_round_trip =
  QCheck.Test.make ~name:"id_of_path inverts path_of_id on every node"
    ~count:60
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, size) ->
      let t = gen_tree ~seed ~size in
      let s = Store.of_tree t in
      List.for_all
        (fun p ->
          match Store.id_of_path s p with
          | None -> false
          | Some id -> Store.path_of_id s id = p)
        (Tree.all_paths t)
      && Store.id_of_path s [ Store.size s + 7 ] = None)

(* ------------------------------------------------------------------ *)
(* Inverted name lists                                                 *)
(* ------------------------------------------------------------------ *)

let prop_postings_document_order =
  QCheck.Test.make
    ~name:"postings: exactly the name's nodes, ascending preorder" ~count:60
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, size) ->
      let t = gen_tree ~seed ~size in
      let s = Store.of_tree t in
      let n = Store.size s in
      let names =
        List.sort_uniq compare (List.init n (fun i -> Store.label s i))
      in
      List.for_all
        (fun name ->
          let expected =
            List.filter (fun i -> Store.label s i = name) (List.init n Fun.id)
          in
          Array.to_list (Store.postings s name) = expected)
        names
      && Store.postings s "no-such-element-name" = [||])

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let prop_bytes_round_trip =
  QCheck.Test.make ~name:"of_bytes(to_bytes s) is byte-stable" ~count:60
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, size) ->
      let t = gen_tree ~seed ~size in
      let s = Store.of_tree t in
      let b = Store.to_bytes s in
      Bytes.equal b (Store.to_bytes s)
      &&
      match Store.of_bytes b with
      | Error _ -> false
      | Ok s' -> Bytes.equal b (Store.to_bytes s'))

let test_save_load_file () =
  let t = gen_tree ~seed:11 ~size:60 in
  let s = Store.of_tree t in
  let path = Filename.temp_file "lqx-test" ".lqx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Store.save ~fsync:true s path;
      List.iter
        (fun mmap ->
          match Store.load ~mmap path with
          | Error e -> Alcotest.failf "load (mmap=%b): %s" mmap e
          | Ok s' ->
              check Alcotest.bool
                (Printf.sprintf "reload (mmap=%b) is byte-stable" mmap)
                true
                (Bytes.equal (Store.to_bytes s) (Store.to_bytes s')))
        [ true; false ])

let test_load_rejects_garbage () =
  let path = Filename.temp_file "lqx-test" ".lqx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "this is not a store";
      close_out oc;
      match Store.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "load accepted garbage")

(* ------------------------------------------------------------------ *)
(* Twig join vs the reference walk                                     *)
(* ------------------------------------------------------------------ *)

let prop_twigjoin_matches_walk =
  QCheck.Test.make ~name:"holistic join = tree walk on random twigs"
    ~count:120
    QCheck.(triple small_int small_int (int_range 1 40))
    (fun (seed, qseed, size) ->
      let t = gen_tree ~seed ~size in
      let q = Fuzz.Gen.twig (Core.Prng.create qseed) ~size:(1 + (size mod 6)) in
      let s = Store.of_tree t in
      let pat = Twig.Eval.to_pattern q in
      Twigjoin.select_paths s pat = Twig.Eval.select_walk q t)

let prop_twigjoin_matches_walk_anchored =
  QCheck.Test.make ~name:"holistic join = tree walk on anchored twigs"
    ~count:120
    QCheck.(triple small_int small_int (int_range 1 40))
    (fun (seed, qseed, size) ->
      let t = gen_tree ~seed ~size in
      let q =
        Fuzz.Gen.anchored_twig (Core.Prng.create qseed)
          ~size:(1 + (size mod 6))
      in
      let s = Store.of_tree t in
      let pat = Twig.Eval.to_pattern q in
      Twigjoin.select_paths s pat = Twig.Eval.select_walk q t)

(* ------------------------------------------------------------------ *)
(* Corpus determinism                                                  *)
(* ------------------------------------------------------------------ *)

let with_pool size f =
  let pool = Core.Pool.create size in
  Fun.protect ~finally:(fun () -> Core.Pool.shutdown pool) (fun () -> f pool)

let test_corpus_deterministic_across_pools () =
  let trees = Array.init 7 (fun i -> gen_tree ~seed:(50 + i) ~size:30) in
  let corpus = Corpus.of_trees trees in
  let q = Twig.Parse.query "//a[b]/c" in
  let pat = Twig.Eval.to_pattern q in
  let baseline = Corpus.select corpus pat in
  let counts = Corpus.map corpus (fun _ s -> Store.size s) in
  List.iter
    (fun psize ->
      with_pool psize (fun pool ->
          check
            Alcotest.(array (list int))
            (Printf.sprintf "select agrees at pool %d" psize)
            baseline
            (Corpus.select ~pool corpus pat);
          check
            Alcotest.(array int)
            (Printf.sprintf "map agrees at pool %d" psize)
            counts
            (Corpus.map ~pool corpus (fun _ s -> Store.size s));
          List.iter
            (fun chunk ->
              check
                Alcotest.(array int)
                (Printf.sprintf "map agrees at pool %d chunk %d" psize chunk)
                counts
                (Corpus.map ~pool ~chunk corpus (fun _ s -> Store.size s)))
            [ 2; 3; 100 ]))
    [ 1; 2; 4 ];
  check Alcotest.int "shards" 7 (Corpus.shards corpus);
  check Alcotest.int "total nodes"
    (Array.fold_left (fun a t -> a + Tree.size t) 0 trees)
    (Corpus.total_nodes corpus)

let test_corpus_parallel_labeling () =
  let trees = Array.init 5 (fun i -> gen_tree ~seed:(80 + i) ~size:25) in
  let sequential = Corpus.of_trees trees in
  with_pool 3 (fun pool ->
      let parallel = Corpus.of_trees ~pool trees in
      for i = 0 to Corpus.shards sequential - 1 do
        check Alcotest.bool
          (Printf.sprintf "shard %d labels equal" i)
          true
          (Bytes.equal
             (Store.to_bytes (Corpus.store sequential i))
             (Store.to_bytes (Corpus.store parallel i)))
      done)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "xmlstore"
    [
      ( "labeling",
        [
          Alcotest.test_case "small document" `Quick test_labeling_small;
          qcheck prop_intervals_are_ancestry;
          qcheck prop_levels_and_parents;
          qcheck prop_path_round_trip;
        ] );
      ("postings", [ qcheck prop_postings_document_order ]);
      ( "persistence",
        [
          qcheck prop_bytes_round_trip;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
          Alcotest.test_case "load rejects garbage" `Quick
            test_load_rejects_garbage;
        ] );
      ( "twigjoin",
        [
          qcheck prop_twigjoin_matches_walk;
          qcheck prop_twigjoin_matches_walk_anchored;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "pool determinism" `Quick
            test_corpus_deterministic_across_pools;
          Alcotest.test_case "parallel labeling" `Quick
            test_corpus_parallel_labeling;
        ] );
    ]
