lib/uschema/schema.mli: Dme Format Xmltree
