lib/uschema/containment.mli: Dme Schema
