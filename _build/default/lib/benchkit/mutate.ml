open Xmltree

let rec permute_children rng (n : Tree.t) =
  Tree.node n.label
    (Core.Prng.shuffle rng (List.map (permute_children rng) n.children))

(* Rebuild the tree with [f] applied to the node at [path]. *)
let rec map_at (n : Tree.t) path f =
  match path with
  | [] -> f n
  | i :: rest ->
      Tree.node n.label
        (List.mapi
           (fun j c -> if j = i then map_at c rest f else c)
           n.children)

(* Element nodes of the document with their paths, shuffled for random
   targeting. *)
let element_nodes rng doc =
  Tree.fold
    (fun path (n : Tree.t) acc ->
      if Tree.is_text n then acc else (path, n) :: acc)
    doc []
  |> Core.Prng.shuffle rng

(* Try candidate mutations until one actually invalidates the schema. *)
let first_invalidating schema candidates =
  List.find_map
    (fun mutant ->
      if Uschema.Schema.valid schema mutant then None else Some mutant)
    (List.filter_map (fun c -> c) candidates)

let drop_required rng schema doc =
  let depgraph = Uschema.Depgraph.of_schema schema in
  let candidates =
    element_nodes rng doc
    |> List.concat_map (fun (path, (n : Tree.t)) ->
           List.mapi
             (fun i (c : Tree.t) ->
               if
                 (not (Tree.is_text c))
                 && Uschema.Depgraph.label_implied depgraph ~at:n.label
                      ~child:c.label
               then
                 Some
                   (map_at doc path (fun node ->
                        Tree.node node.label
                          (List.filteri (fun j _ -> j <> i) node.children)))
               else None)
             n.children)
  in
  first_invalidating schema candidates

let duplicate_child rng schema doc =
  let candidates =
    element_nodes rng doc
    |> List.concat_map (fun (path, (n : Tree.t)) ->
           List.mapi
             (fun i (c : Tree.t) ->
               if Tree.is_text c then None
               else
                 Some
                   (map_at doc path (fun node ->
                        let dup =
                          List.concat
                            (List.mapi
                               (fun j child ->
                                 if j = i then [ child; child ] else [ child ])
                               node.children)
                        in
                        Tree.node node.label dup)))
             n.children)
  in
  first_invalidating schema candidates

let insert_foreign rng schema doc =
  let foreign =
    let used = Uschema.Schema.labels schema in
    let rec pick i =
      let candidate = Printf.sprintf "zz_foreign%d" i in
      if List.mem candidate used then pick (i + 1) else candidate
    in
    pick 0
  in
  let candidates =
    element_nodes rng doc
    |> List.map (fun (path, _) ->
           Some
             (map_at doc path (fun node ->
                  Tree.node node.label (Tree.leaf foreign :: node.children))))
  in
  first_invalidating schema candidates

let invalidating_mutants rng schema doc =
  List.filter_map
    (fun f -> f rng schema doc)
    [ drop_required; duplicate_child; insert_foreign ]
