(* Chaos + throughput bench for `learnq serve` (PR 6).

   Phase A — process-level chaos: spawn the real daemon, drive 50 mixed
   twig/join/path sessions over HTTP from client threads whose faults
   (refusals, timeouts, label noise) are a pure function of the question,
   SIGKILL the daemon at ~40% progress, restart it on the same state
   directory, and finish every session.  Gates: zero sessions lost, and
   every session converges to the query an uninterrupted in-process run
   learns.  Sessions/sec and per-answer p50/p99 latency are recorded.

   Phase B — the multicore redemption gate: 24 fsync-heavy twig sessions
   (sync=Always) driven in registry batches, pool=1 vs pool=2.  Even on
   one core pool=2 must win: a session blocked in fsync releases the
   runtime lock while another session's determined-scan computes.

   Results land in BENCH_PR6.json; the serve-smoke CI lane greps its
   gates. *)

module Engines = Server.Engines
module Registry = Server.Registry
module Stepper = Server.Stepper
module Client = Server.Client
module Json = Server.Json
module Prng = Core.Prng

let sessions_n = 50
let threads_n = 8
let kill_fraction = 0.4
let pool_sessions = 24
let pool_scale _ = 0.02
let pool_stride = 8 (* answers per session per pool round *)
let pool_trials = 3 (* best-of-N, damping disk-latency variance *)

(* permille fault rates for phase A *)
let refusal = 120
let timeout = 60
let noise = 50

let now = Core.Monotonic.now

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

type sess = {
  id : string;
  tenant : string;
  spec : Engines.spec;
  goal : string;
  truth : string -> bool;
}

let sessions () =
  List.init sessions_n (fun i ->
      let engine = [| "twig"; "join"; "path" |].(i mod 3) in
      let spec =
        {
          Engines.engine;
          seed = 1000 + i;
          scale = 0.03;
          rows = 5;
          cities = 6;
        }
      in
      let goal =
        match engine with
        | "twig" -> "//person/name"
        | "join" -> "planted"
        | _ -> "highway*"
      in
      let truth =
        match Engines.oracle spec ~goal with
        | Ok f -> f
        | Error e ->
            failwith ("serve bench: bad goal: " ^ Core.Error.to_string e)
      in
      {
        id = Printf.sprintf "s%02d" i;
        tenant = Printf.sprintf "t%d" (i mod 4);
        spec;
        goal;
        truth;
      })

(* The deterministic client: the same question always draws the same
   refusal / timeout / (possibly noise-flipped) label, so re-asking after
   a crash repeats history exactly. *)
let reply_for s key =
  let g = Prng.create (s.spec.Engines.seed lxor Hashtbl.hash key) in
  let roll = Prng.int g 1000 in
  if roll < refusal then Core.Flaky.Refused
  else if roll < refusal + timeout then Core.Flaky.Timed_out
  else
    let label = s.truth key in
    Core.Flaky.Label (if Prng.int g 1000 < noise then not label else label)

(* ------------------------------------------------------------------ *)
(* In-process reference runs (and phase B)                             *)
(* ------------------------------------------------------------------ *)

let with_temp_dir prefix f =
  let path = Filename.temp_file prefix ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e ->
             try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
           (Sys.readdir path)
       with Sys_error _ -> ());
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

let registry ?(vfs = Core.Vfs.real) ?(checkpoint_every = 0) ?(max_live = 0)
    ~dir ~sync () =
  Registry.create
    {
      Registry.dir;
      sync;
      tenants = Server.Tenant.make [];
      step_fuel = None;
      step_timeout = None;
      vfs;
      checkpoint_every;
      max_live;
      idle_evict_after = 0.;
    }

let drive_stepper st reply =
  let rec go n =
    let v = st.Stepper.view () in
    if v.Stepper.done_ then (n, v.Stepper.query)
    else
      match v.Stepper.question with
      | None -> (n, v.Stepper.query)
      | Some key -> (
          match st.Stepper.answer ~qid:v.Stepper.qid (reply key) with
          | Ok _ -> go (n + 1)
          | Error e ->
              failwith
                ("serve bench: stepper error: " ^ Core.Error.to_string e))
  in
  go 0

(* Uninterrupted in-process runs: the ground truth for phase A's
   crash-equivalence gate, and the expected-answers count that places the
   kill point. *)
let reference_runs sess =
  with_temp_dir "learnq-serve-ref" (fun dir ->
      let reg = registry ~dir ~sync:Core.Journal.Off () in
      Fun.protect
        ~finally:(fun () -> Registry.drain reg)
        (fun () ->
          List.map
            (fun s ->
              match
                Registry.create_session reg ~tenant:s.tenant ~id:s.id s.spec
              with
              | Error e ->
                  failwith ("serve bench: create: " ^ Core.Error.to_string e)
              | Ok _ -> (
                  match Registry.find reg ~tenant:s.tenant ~id:s.id with
                  | None -> failwith "serve bench: session vanished"
                  | Some st ->
                      let answers, query = drive_stepper st (reply_for s) in
                      (s, answers, query)))
            sess))

(* ------------------------------------------------------------------ *)
(* Phase A: the real daemon under SIGKILL                              *)
(* ------------------------------------------------------------------ *)

let cli_bin () =
  match Sys.getenv_opt "LEARNQ_BIN" with
  | Some p -> p
  | None ->
      let d = Filename.dirname Sys.executable_name in
      let cand =
        Filename.concat
          (Filename.concat (Filename.dirname d) "bin")
          "learnq_cli.exe"
      in
      if Sys.file_exists cand then cand else "learnq_cli.exe"

(* Spawn the daemon and parse the "listening on HOST:PORT" announce. *)
let spawn_daemon ~bin ~dir =
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process bin
      [|
        bin; "serve"; "--state-dir"; dir; "--port"; "0"; "--pool"; "2";
        "--journal-sync"; "batch"; "--drain-grace"; "3";
      |]
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let line = try input_line ic with End_of_file -> "" in
  let port =
    match String.rindex_opt line ':' with
    | Some i -> (
        match
          int_of_string_opt
            (String.trim
               (String.sub line (i + 1) (String.length line - i - 1)))
        with
        | Some p -> p
        | None -> failwith ("serve bench: bad announce: " ^ line))
    | None -> failwith ("serve bench: no announce line: " ^ line)
  in
  (pid, port, ic)

type shared = {
  port : int Atomic.t;  (** 0 while the daemon is down *)
  answers : int Atomic.t;
  lat_m : Mutex.t;
  mutable lats : float list;  (** per-answer round trips, seconds *)
  results_m : Mutex.t;
  results : (string, string option) Hashtbl.t;  (** id -> final query *)
}

let record_lat sh dt =
  Mutex.lock sh.lat_m;
  sh.lats <- dt :: sh.lats;
  Mutex.unlock sh.lat_m

let record_result sh id q =
  Mutex.lock sh.results_m;
  Hashtbl.replace sh.results id q;
  Mutex.unlock sh.results_m

let rec await_port sh =
  match Atomic.get sh.port with
  | 0 ->
      Thread.delay 0.05;
      await_port sh
  | p -> p

type wire_view = {
  w_done : bool;
  w_qid : int;
  w_question : string option;
  w_query : string option;
}

let wire_view j =
  {
    w_done = Option.value ~default:false (Json.get_bool "done" j);
    w_qid = Option.value ~default:0 (Json.get_int "qid" j);
    w_question = Json.mem "question" j |> Fun.flip Option.bind Json.str;
    w_query = Json.mem "query" j |> Fun.flip Option.bind Json.str;
  }

let json_of_reply = function
  | Core.Flaky.Label b -> Json.Bool b
  | Core.Flaky.Refused -> Json.Str "refused"
  | Core.Flaky.Timed_out -> Json.Str "timed_out"

(* Drive one session over HTTP to completion, surviving daemon death: any
   transport error reconnects (waiting out the restart) and re-creates the
   session, which resumes it from its journal. *)
let drive_http sh s =
  let rec connect () =
    let port = await_port sh in
    match Client.connect ~host:"127.0.0.1" ~port with
    | Ok c -> c
    | Error _ ->
        Thread.delay 0.05;
        connect ()
  in
  let create conn =
    Client.request conn ~meth:"POST" ~path:"/v1/sessions" ~tenant:s.tenant
      ~body:
        (Json.Obj
           (("id", Json.Str s.id)
           :: (match Engines.json_of_spec s.spec with
              | Json.Obj fields -> fields
              | _ -> [])))
      ()
  in
  let rec restart old =
    Client.close old;
    let conn = connect () in
    match create conn with
    | Ok (200, j) -> (conn, wire_view j)
    | Ok (503, _) | Ok (429, _) ->
        Thread.delay 0.1;
        restart conn
    | Ok (code, j) ->
        failwith
          (Printf.sprintf "serve bench: create %s -> %d %s" s.id code
             (Json.to_string j))
    | Error _ ->
        Thread.delay 0.1;
        restart conn
  in
  let refresh conn =
    match
      Client.request conn ~meth:"GET" ~path:("/v1/sessions/" ^ s.id)
        ~tenant:s.tenant ()
    with
    | Ok (200, j) -> (conn, wire_view j)
    | Ok _ ->
        Thread.delay 0.1;
        restart conn
    | Error _ -> restart conn
  in
  let rec step conn v =
    if v.w_done then begin
      record_result sh s.id v.w_query;
      Client.close conn
    end
    else
      match v.w_question with
      | None ->
          record_result sh s.id v.w_query;
          Client.close conn
      | Some key -> (
          let reply = reply_for s key in
          let t0 = now () in
          match
            Client.request conn ~meth:"POST"
              ~path:("/v1/sessions/" ^ s.id ^ "/answers")
              ~tenant:s.tenant
              ~body:
                (Json.Obj
                   [
                     ("qid", Json.of_int v.w_qid);
                     ("reply", json_of_reply reply);
                   ])
              ()
          with
          | Ok (200, j) ->
              record_lat sh (now () -. t0);
              Atomic.incr sh.answers;
              step conn (wire_view j)
          | Ok (409, _) ->
              (* the question moved on (e.g. a duplicate after restart):
                 refetch and continue *)
              let conn, v = refresh conn in
              step conn v
          | Ok ((503 | 429), _) ->
              Thread.delay 0.1;
              let conn, v = refresh conn in
              step conn v
          | Ok (code, j) ->
              failwith
                (Printf.sprintf "serve bench: answer %s -> %d %s" s.id code
                   (Json.to_string j))
          | Error _ ->
              let conn, v = restart conn in
              step conn v)
  in
  let conn = connect () in
  let conn, v = restart conn in
  step conn v

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

type phase_a = {
  a_elapsed : float;
  a_sessions_per_sec : float;
  a_p50_ms : float;
  a_p99_ms : float;
  a_killed : bool;
  a_zero_lost : bool;
  a_match : bool;
  a_drain_clean : bool;
}

let run_phase_a sess refs state_dir =
  let bin = cli_bin () in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let expected_answers =
    List.fold_left (fun n (_, a, _) -> n + a) 0 refs
  in
  let kill_at =
    max 1 (int_of_float (kill_fraction *. float_of_int expected_answers))
  in
  let sh =
    {
      port = Atomic.make 0;
      answers = Atomic.make 0;
      lat_m = Mutex.create ();
      lats = [];
      results_m = Mutex.create ();
      results = Hashtbl.create 64;
    }
  in
  let pid0, port0, ic0 = spawn_daemon ~bin ~dir:state_dir in
  Atomic.set sh.port port0;
  let t0 = now () in
  let workers =
    List.init threads_n (fun w ->
        let mine =
          List.filteri (fun i _ -> i mod threads_n = w) sess
        in
        Thread.create (fun () -> List.iter (drive_http sh) mine) ())
  in
  (* The assassin: SIGKILL at ~40% of expected progress, then restart on
     the same state directory. *)
  let killed = ref false in
  let live_pid = ref pid0 and live_ic = ref ic0 in
  let rec monitor () =
    let doneness =
      Mutex.lock sh.results_m;
      let n = Hashtbl.length sh.results in
      Mutex.unlock sh.results_m;
      n
    in
    if doneness >= sessions_n then ()
    else begin
      if (not !killed) && Atomic.get sh.answers >= kill_at then begin
        killed := true;
        Atomic.set sh.port 0;
        Unix.kill !live_pid Sys.sigkill;
        ignore (Unix.waitpid [] !live_pid);
        close_in_noerr !live_ic;
        let pid, port, ic = spawn_daemon ~bin ~dir:state_dir in
        live_pid := pid;
        live_ic := ic;
        Atomic.set sh.port port
      end;
      Thread.delay 0.02;
      monitor ()
    end
  in
  monitor ();
  List.iter Thread.join workers;
  let elapsed = now () -. t0 in
  (* Zero-lost gate: the restarted daemon must still hold every session. *)
  let stats_sessions =
    match Client.connect ~host:"127.0.0.1" ~port:(await_port sh) with
    | Error _ -> -1
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.request c ~meth:"GET" ~path:"/stats" () with
            | Ok (200, j) -> Option.value ~default:(-1) (Json.get_int "sessions" j)
            | _ -> -1)
  in
  (* Graceful drain: SIGTERM must exit 0 with journals flushed. *)
  Unix.kill !live_pid Sys.sigterm;
  let _, status = Unix.waitpid [] !live_pid in
  close_in_noerr !live_ic;
  let drain_clean = status = Unix.WEXITED 0 in
  let all_match =
    List.for_all
      (fun (s, _, ref_q) ->
        match Hashtbl.find_opt sh.results s.id with
        | Some q -> q = ref_q
        | None -> false)
      refs
  in
  let lats =
    let a = Array.of_list (List.map (fun s -> s *. 1000.) sh.lats) in
    Array.sort compare a;
    a
  in
  {
    a_elapsed = elapsed;
    a_sessions_per_sec = float_of_int sessions_n /. elapsed;
    a_p50_ms = percentile lats 0.50;
    a_p99_ms = percentile lats 0.99;
    a_killed = !killed;
    a_zero_lost = stats_sessions = sessions_n;
    a_match = all_match;
    a_drain_clean = drain_clean;
  }

(* ------------------------------------------------------------------ *)
(* Phase B: pool=1 vs pool=2 on the fsync-bound cross-session workload *)
(* ------------------------------------------------------------------ *)

(* One registry round: each live session answers one question, the whole
   key-disjoint batch on the pool — the dispatcher's execution model.
   Under sync=Always every answer costs two fsyncs; with pool=2 one
   session's fsync wait overlaps another's determined-scan, which is the
   whole multicore story on a single core. *)
let run_pool_phase ~pool_size =
  with_temp_dir "learnq-serve-pool" (fun dir ->
      let reg = registry ~dir ~sync:Core.Journal.Always () in
      let steppers =
        List.init pool_sessions (fun i ->
            let spec =
              {
                Engines.engine = "path";
                seed = 2000 + i;
                scale = pool_scale i;
                rows = 5;
                cities = 7;
              }
            in
            let truth =
              match Engines.oracle spec ~goal:"highway*" with
              | Ok f -> f
              | Error e -> failwith (Core.Error.to_string e)
            in
            let id = Printf.sprintf "p%02d" i in
            (match
               Registry.create_session reg ~tenant:"bench" ~id spec
             with
            | Ok _ -> ()
            | Error e -> failwith (Core.Error.to_string e));
            match Registry.find reg ~tenant:"bench" ~id with
            | None -> failwith "serve bench: pool session vanished"
            | Some st -> (st, truth))
      in
      let pool = Core.Pool.create pool_size in
      (* A stride of answers per round keeps the map_list barrier (and the
         cross-domain GC synchronisation it implies on one core) amortised
         over many fsyncs. *)
      let one_stride (st, truth) =
        let rec go n =
          let v = st.Stepper.view () in
          if v.Stepper.done_ then false
          else if n = 0 then true
          else
            match v.Stepper.question with
            | None -> false
            | Some key -> (
                match
                  st.Stepper.answer ~qid:v.Stepper.qid
                    (Core.Flaky.Label (truth key))
                with
                | Ok _ -> go (n - 1)
                | Error e -> failwith (Core.Error.to_string e))
        in
        go pool_stride
      in
      let t0 = now () in
      let rec rounds live =
        match live with
        | [] -> ()
        | live ->
            let still =
              Core.Pool.map_list pool one_stride live
            in
            rounds
              (List.map2 (fun s alive -> (s, alive)) live still
              |> List.filter_map (fun (s, alive) ->
                     if alive then Some s else None))
      in
      rounds steppers;
      let elapsed = now () -. t0 in
      Core.Pool.shutdown pool;
      Registry.drain reg;
      elapsed)

(* ------------------------------------------------------------------ *)

let run () =
  print_endline "== learnq serve: chaos + throughput (PR 6) ==";
  let sess = sessions () in
  let refs = reference_runs sess in
  let expected = List.fold_left (fun n (_, a, _) -> n + a) 0 refs in
  Printf.printf "reference: %d sessions, %d total answers\n%!" sessions_n
    expected;
  let state_dir =
    match Sys.getenv_opt "LEARNQ_SERVE_STATE" with
    | Some d ->
        (try Unix.mkdir d 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        d
    | None ->
        let d = Filename.temp_file "learnq-serve-chaos" ".d" in
        Sys.remove d;
        Unix.mkdir d 0o700;
        d
  in
  let a = run_phase_a sess refs state_dir in
  Printf.printf
    "phase A: %.1f s, %.1f sessions/s, p50 %.2f ms, p99 %.2f ms\n\
    \         killed=%b zero_lost=%b match=%b drain_clean=%b\n%!"
    a.a_elapsed a.a_sessions_per_sec a.a_p50_ms a.a_p99_ms a.a_killed
    a.a_zero_lost a.a_match a.a_drain_clean;
  let best pool_size =
    List.init pool_trials (fun _ -> run_pool_phase ~pool_size)
    |> List.fold_left min infinity
  in
  let pool1 = best 1 in
  let pool2 = best 2 in
  Printf.printf "phase B: pool1 %.2f s, pool2 %.2f s (%.2fx)\n%!" pool1 pool2
    (pool1 /. pool2);
  let j =
    Json.Obj
      [
        ("bench", Json.Str "serve-chaos");
        ("sessions", Json.of_int sessions_n);
        ("expected_answers", Json.of_int expected);
        ("elapsed_s", Json.Num a.a_elapsed);
        ("sessions_per_sec", Json.Num a.a_sessions_per_sec);
        ("p50_ms", Json.Num a.a_p50_ms);
        ("p99_ms", Json.Num a.a_p99_ms);
        ("killed_mid_run", Json.Bool a.a_killed);
        ("zero_lost_sessions", Json.Bool a.a_zero_lost);
        ("queries_match_uninterrupted", Json.Bool a.a_match);
        ("drain_clean", Json.Bool a.a_drain_clean);
        ("pool_sessions", Json.of_int pool_sessions);
        ("pool1_s", Json.Num pool1);
        ("pool2_s", Json.Num pool2);
        ("pool2_beats_pool1", Json.Bool (pool2 < pool1));
      ]
  in
  let oc = open_out "BENCH_PR6.json" in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc;
  let ok =
    a.a_killed && a.a_zero_lost && a.a_match && a.a_drain_clean
    && pool2 < pool1
  in
  Printf.printf "wrote BENCH_PR6.json (all green: %b)\n%!" ok
