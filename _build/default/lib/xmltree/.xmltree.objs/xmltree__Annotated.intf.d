lib/xmltree/annotated.mli: Core Format Tree
