(* Deterministic open-loop load generator for `learnq serve`.

   Arrivals are scheduled, not reactive: a seeded exponential process
   (rate = sessions / duration) fixes every session's start time up
   front, and a scheduler thread releases sessions at those instants
   regardless of how fast earlier ones complete.  A slow server
   therefore sees work *pile up* — exactly the regime a closed-loop
   driver (start the next session when the last finishes) can never
   produce, and the one that exposes queueing collapse.

   A fixed pool of worker threads drives the released sessions over
   keep-alive connections (one [Server.Client] per worker, reused across
   sessions — the reconnect-once-on-stale logic in the client absorbs
   idle eviction).  A sampler thread emits a time series: completions/sec
   over the interval, the sliding-window p50/p99 that /metrics exposes
   (read in-process via [Core.Obs.Labeled], keeping the scrape off the
   measured path), and connection/thread gauges scraped from /stats over
   the wire.

   Everything is seeded; two runs with the same config schedule the same
   arrival times and answer every question identically. *)

module Engines = Server.Engines
module Client = Server.Client
module Json = Server.Json
module Prng = Core.Prng
module Obs = Core.Obs

let now = Core.Monotonic.now

type config = {
  lg_host : string;
  lg_port : int;
  lg_tenant : string;
  lg_seed : int;
  lg_sessions : int;  (** total arrivals *)
  lg_duration : float;  (** arrival window, seconds *)
  lg_workers : int;  (** keep-alive client threads *)
  lg_sample_every : float;  (** seconds between time-series samples *)
}

type sample = {
  sm_t : float;  (** seconds since the run started *)
  sm_done : int;  (** sessions completed so far *)
  sm_rate : float;  (** completions/sec over the last interval *)
  sm_p50_ms : float;  (** sliding-window p50 request latency *)
  sm_p99_ms : float;  (** sliding-window p99 request latency *)
  sm_conns : int;  (** /stats: open connections *)
  sm_parked : int;  (** /stats: parked keep-alive connections *)
  sm_io_busy : int;  (** /stats: workers executing a request *)
  sm_threads : int;  (** /stats: mux thread budget (io_threads + 1) *)
}

type result = {
  r_elapsed : float;
  r_completed : int;
  r_failed : int;
  r_answers : int;
  r_p50_ms : float;  (** over every answer round trip in the run *)
  r_p99_ms : float;
  r_lag_max_ms : float;
      (** worst lateness of a session pickup vs its scheduled arrival —
          large values mean the worker pool, not the server, was the
          bottleneck and the run was not truly open-loop *)
  r_samples : sample list;
}

(* permille fault rates — light, enough to keep the refusal/timeout
   paths warm without dominating the wall clock *)
let refusal = 30
let timeout = 15
let noise = 20

type sess = {
  id : string;
  spec : Engines.spec;
  truth : string -> bool;
}

let sessions cfg =
  List.init cfg.lg_sessions (fun i ->
      let engine = [| "twig"; "join"; "path" |].(i mod 3) in
      let spec =
        {
          Engines.engine;
          seed = cfg.lg_seed + i;
          scale = 0.03;
          rows = 5;
          cities = 6;
        }
      in
      let goal =
        match engine with
        | "twig" -> "//person/name"
        | "join" -> "planted"
        | _ -> "highway*"
      in
      let truth =
        match Engines.oracle spec ~goal with
        | Ok f -> f
        | Error e -> failwith ("loadgen: bad goal: " ^ Core.Error.to_string e)
      in
      { id = Printf.sprintf "g%05d" i; spec; truth })

(* Same question, same reply — deterministic up to thread interleaving. *)
let reply_for s key =
  let g = Prng.create (s.spec.Engines.seed lxor Hashtbl.hash key) in
  let roll = Prng.int g 1000 in
  if roll < refusal then Core.Flaky.Refused
  else if roll < refusal + timeout then Core.Flaky.Timed_out
  else
    let label = s.truth key in
    Core.Flaky.Label (if Prng.int g 1000 < noise then not label else label)

let json_of_reply = function
  | Core.Flaky.Label b -> Json.Bool b
  | Core.Flaky.Refused -> Json.Str "refused"
  | Core.Flaky.Timed_out -> Json.Str "timed_out"

let wire_view j =
  ( Option.value ~default:false (Json.get_bool "done" j),
    Option.value ~default:0 (Json.get_int "qid" j),
    Json.mem "question" j |> Fun.flip Option.bind Json.str )

(* ------------------------------------------------------------------ *)
(* Worker: drive one session over a shared keep-alive connection       *)
(* ------------------------------------------------------------------ *)

type shared = {
  cfg : config;
  completed : int Atomic.t;
  failed : int Atomic.t;
  answers : int Atomic.t;
  lat_m : Mutex.t;
  mutable lats : float list;  (** per-answer round trips, seconds *)
}

let record_lat sh dt =
  Mutex.lock sh.lat_m;
  sh.lats <- dt :: sh.lats;
  Mutex.unlock sh.lat_m

(* Each worker owns one connection for its whole lifetime; [conn] is a
   cell so a transport error can swap in a fresh one. *)
let rec fresh_conn cfg =
  match Client.connect ~host:cfg.lg_host ~port:cfg.lg_port with
  | Ok c -> c
  | Error _ ->
      Thread.delay 0.05;
      fresh_conn cfg

let drive sh conn s =
  let cfg = sh.cfg in
  let req ?body meth path =
    let rec go tries =
      match
        Client.request !conn ~meth ~path ~tenant:cfg.lg_tenant ?body ()
      with
      | Ok ((503 | 429), _) when tries > 0 ->
          Thread.delay 0.05;
          go (tries - 1)
      | Error _ when tries > 0 ->
          Client.close !conn;
          conn := fresh_conn cfg;
          Thread.delay 0.05;
          go (tries - 1)
      | r -> r
    in
    go 100
  in
  let create () =
    req "POST" "/v1/sessions"
      ~body:
        (Json.Obj
           (("id", Json.Str s.id)
           :: (match Engines.json_of_spec s.spec with
              | Json.Obj fields -> fields
              | _ -> [])))
  in
  let refresh () = req "GET" ("/v1/sessions/" ^ s.id) in
  let rec step (done_, qid, question) =
    if done_ then true
    else
      match question with
      | None -> true
      | Some key -> (
          let t0 = now () in
          match
            req "POST"
              ("/v1/sessions/" ^ s.id ^ "/answers")
              ~body:
                (Json.Obj
                   [
                     ("qid", Json.of_int qid);
                     ("reply", json_of_reply (reply_for s key));
                   ])
          with
          | Ok (200, j) ->
              record_lat sh (now () -. t0);
              Atomic.incr sh.answers;
              step (wire_view j)
          | Ok (409, _) -> (
              match refresh () with
              | Ok (200, j) -> step (wire_view j)
              | _ -> false)
          | _ -> false)
  in
  let ok =
    match create () with Ok (200, j) -> step (wire_view j) | _ -> false
  in
  if ok then Atomic.incr sh.completed else Atomic.incr sh.failed

(* ------------------------------------------------------------------ *)
(* Open-loop arrival queue                                             *)
(* ------------------------------------------------------------------ *)

type 'a queue = {
  q : 'a Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable q_closed : bool;
}

let queue () =
  { q = Queue.create (); m = Mutex.create (); cv = Condition.create (); q_closed = false }

let push qu x =
  Mutex.lock qu.m;
  Queue.push x qu.q;
  Condition.signal qu.cv;
  Mutex.unlock qu.m

let close_queue qu =
  Mutex.lock qu.m;
  qu.q_closed <- true;
  Condition.broadcast qu.cv;
  Mutex.unlock qu.m

let pop qu =
  Mutex.lock qu.m;
  let rec go () =
    if not (Queue.is_empty qu.q) then Some (Queue.pop qu.q)
    else if qu.q_closed then None
    else begin
      Condition.wait qu.cv qu.m;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock qu.m;
  r

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let window_ms cfg p =
  Obs.Labeled.window_percentile "learnq_request_seconds"
    [ ("tenant", cfg.lg_tenant) ]
    p
  *. 1e3

let scrape_stats cfg stats_conn =
  let get () =
    match !stats_conn with
    | Some c -> (
        match Client.request c ~meth:"GET" ~path:"/stats" () with
        | Ok (200, j) -> Some j
        | _ ->
            Client.close c;
            stats_conn := None;
            None)
    | None -> (
        match Client.connect ~host:cfg.lg_host ~port:cfg.lg_port with
        | Ok c ->
            stats_conn := Some c;
            (match Client.request c ~meth:"GET" ~path:"/stats" () with
            | Ok (200, j) -> Some j
            | _ -> None)
        | Error _ -> None)
  in
  match get () with
  | None -> (0, 0, 0, 0)
  | Some j ->
      let f k = Option.value ~default:0 (Json.get_int k j) in
      (f "connections", f "parked", f "io_busy", f "threads")

(* ------------------------------------------------------------------ *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sess = Array.of_list (sessions cfg) in
  let sh =
    {
      cfg;
      completed = Atomic.make 0;
      failed = Atomic.make 0;
      answers = Atomic.make 0;
      lat_m = Mutex.create ();
      lats = [];
    }
  in
  (* Fix the whole arrival schedule up front from the seed: cumulative
     exponential gaps at rate sessions/duration. *)
  let g = Prng.create cfg.lg_seed in
  let rate = float_of_int cfg.lg_sessions /. cfg.lg_duration in
  let arrivals =
    let t = ref 0.0 in
    Array.init cfg.lg_sessions (fun _ ->
        let u = min (Prng.float g 1.0) 0.999_999 in
        t := !t +. (-.log (1.0 -. u) /. rate);
        !t)
  in
  let qu = queue () in
  let lag_max = ref 0.0 in
  let lag_m = Mutex.create () in
  let t0 = now () in
  let scheduler =
    Thread.create
      (fun () ->
        Array.iteri
          (fun i at ->
            let d = at -. (now () -. t0) in
            if d > 0.0 then Thread.delay d;
            push qu (i, at))
          arrivals;
        close_queue qu)
      ()
  in
  let workers =
    List.init (max 1 cfg.lg_workers) (fun _ ->
        Thread.create
          (fun () ->
            let conn = ref (fresh_conn cfg) in
            let rec go () =
              match pop qu with
              | None -> Client.close !conn
              | Some (i, at) ->
                  let lag = now () -. t0 -. at in
                  Mutex.lock lag_m;
                  if lag > !lag_max then lag_max := lag;
                  Mutex.unlock lag_m;
                  drive sh conn sess.(i);
                  go ()
            in
            go ())
          ())
  in
  (* Time series: runs until every session is accounted for. *)
  let samples = ref [] in
  let stats_conn = ref None in
  let sampler =
    Thread.create
      (fun () ->
        let prev_done = ref 0 and prev_t = ref (now ()) in
        let rec tick () =
          let d = Atomic.get sh.completed + Atomic.get sh.failed in
          if d < cfg.lg_sessions then begin
            Thread.delay cfg.lg_sample_every;
            let t = now () in
            let d = Atomic.get sh.completed + Atomic.get sh.failed in
            let rate = float_of_int (d - !prev_done) /. (t -. !prev_t) in
            prev_done := d;
            prev_t := t;
            let conns, parked, io_busy, threads =
              scrape_stats cfg stats_conn
            in
            samples :=
              {
                sm_t = t -. t0;
                sm_done = d;
                sm_rate = rate;
                sm_p50_ms = window_ms cfg 0.50;
                sm_p99_ms = window_ms cfg 0.99;
                sm_conns = conns;
                sm_parked = parked;
                sm_io_busy = io_busy;
                sm_threads = threads;
              }
              :: !samples;
            tick ()
          end
        in
        tick ())
      ()
  in
  Thread.join scheduler;
  List.iter Thread.join workers;
  Thread.join sampler;
  (match !stats_conn with Some c -> Client.close c | None -> ());
  let elapsed = now () -. t0 in
  let lats =
    let a = Array.of_list (List.map (fun s -> s *. 1000.) sh.lats) in
    Array.sort compare a;
    a
  in
  {
    r_elapsed = elapsed;
    r_completed = Atomic.get sh.completed;
    r_failed = Atomic.get sh.failed;
    r_answers = Atomic.get sh.answers;
    r_p50_ms = percentile lats 0.50;
    r_p99_ms = percentile lats 0.99;
    r_lag_max_ms = !lag_max *. 1000.;
    r_samples = List.rev !samples;
  }

let samples_json samples =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           [
             ("t_s", Json.Num s.sm_t);
             ("done_sessions", Json.of_int s.sm_done);
             ("sessions_per_sec", Json.Num s.sm_rate);
             ("p50_ms", Json.Num s.sm_p50_ms);
             ("p99_ms", Json.Num s.sm_p99_ms);
             ("connections", Json.of_int s.sm_conns);
             ("parked", Json.of_int s.sm_parked);
             ("io_busy", Json.of_int s.sm_io_busy);
             ("threads", Json.of_int s.sm_threads);
           ])
       samples)
