module Prng = Core.Prng
module Tree = Xmltree.Tree
module Query = Twig.Query

let labels = [| "a"; "b"; "c"; "d" |]
let label g = Prng.pick_array g labels

(* [budget] split into [k] parts, each >= 1 (requires budget >= k). *)
let split_budget g budget k =
  if k <= 0 then []
  else begin
    let parts = Array.make k 1 in
    for _ = 1 to budget - k do
      let i = Prng.int g k in
      parts.(i) <- parts.(i) + 1
    done;
    Array.to_list parts
  end

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)
(* ------------------------------------------------------------------ *)

let rec tree_sized g budget =
  if budget <= 1 then Tree.leaf (label g)
  else
    let k = Prng.int_in g 1 (min 4 (budget - 1)) in
    let children = List.map (tree_sized g) (split_budget g (budget - 1) k) in
    Tree.node (label g) children

let tree g ~size = tree_sized g (max 1 size)

let attr_names = [| "x"; "y" |]

(* Trim-stable, no digit-only values; [&], [<] and quotes exercise the
   escaper both in character data and in attribute values. *)
let text_words = [| "t"; "hello"; "a&b"; "1<2"; "he said \"hi\""; "x y" |]

let rec xml_sized g budget =
  let lbl = label g in
  if budget <= 1 then Tree.leaf lbl
  else begin
    let room = budget - 1 in
    let n_attrs =
      if room >= 2 && Prng.chance g 0.4 then
        Prng.int_in g 1 (min (Array.length attr_names) (room / 2))
      else 0
    in
    let attrs =
      List.init n_attrs (fun i ->
          Tree.node ("@" ^ attr_names.(i))
            [ Tree.text (Prng.pick_array g text_words) ])
    in
    let room = room - (2 * n_attrs) in
    let text_child =
      if room >= 1 && Prng.chance g 0.3 then
        [ Tree.text (Prng.pick_array g text_words) ]
      else []
    in
    let room = room - List.length text_child in
    let elems =
      if room <= 0 then []
      else
        let k = Prng.int_in g 0 (min 4 room) in
        List.map (xml_sized g) (split_budget g room k)
    in
    let content =
      if Prng.bool g then text_child @ elems else elems @ text_child
    in
    Tree.node lbl (attrs @ content)
  end

let xml_tree g ~size = xml_sized g (max 1 size)

let element_paths t =
  List.filter
    (fun p ->
      match Tree.node_at t p with
      | Some n -> not (Tree.is_text n)
      | None -> false)
    (Tree.all_paths t)

let annotated g t ~k =
  List.map (Xmltree.Annotated.make t) (Prng.sample g k (element_paths t))

let rec map_at (t : Tree.t) path f =
  match path with
  | [] -> f t
  | i :: rest ->
      let children =
        List.mapi (fun j c -> if j = i then map_at c rest f else c) t.children
      in
      { t with children }

let mutant_doc g t =
  let p = Prng.pick g (Tree.all_paths t) in
  match (Prng.int g 3, List.rev p) with
  | 0, _ ->
      let fresh = if Prng.bool g then "zz" else label g in
      map_at t p (fun n -> { n with Tree.label = fresh })
  | _, [] -> { t with Tree.label = "zz" }
  | 1, i :: rev_parent ->
      map_at t (List.rev rev_parent) (fun parent ->
          { parent with
            Tree.children = List.filteri (fun j _ -> j <> i) parent.children })
  | _, i :: rev_parent ->
      map_at t (List.rev rev_parent) (fun parent ->
          match List.nth_opt parent.children i with
          | Some c -> { parent with Tree.children = parent.children @ [ c ] }
          | None -> parent)

(* ------------------------------------------------------------------ *)
(* Twig queries                                                        *)
(* ------------------------------------------------------------------ *)

let node_test g =
  if Prng.chance g 0.25 then Query.Wildcard else Query.Label (label g)

let axis g = if Prng.chance g 0.35 then Query.Descendant else Query.Child

let rec filter_sized g budget : Query.filter =
  let ftest = node_test g in
  if budget <= 1 then { ftest; fsubs = [] }
  else
    let k = Prng.int_in g 1 (min 3 (budget - 1)) in
    let fsubs =
      List.map (fun b -> (axis g, filter_sized g b)) (split_budget g (budget - 1) k)
    in
    { ftest; fsubs }

let filter_edge g ~size = (axis g, filter_sized g (max 1 size))

let twig g ~size : Query.t =
  let size = max 1 size in
  let depth = Prng.int_in g 1 (min 4 size) in
  List.map
    (fun b ->
      let nfilters = if b >= 2 then Prng.int_in g 0 (min 2 (b - 1)) else 0 in
      let fbudgets = split_budget g (b - 1) nfilters in
      { Query.axis = axis g;
        test = node_test g;
        filters = List.map (fun fb -> (axis g, filter_sized g fb)) fbudgets })
    (split_budget g size depth)

(* Repair into the anchored fragment: any wildcard incident to a descendant
   edge (or sitting at the output) becomes a label; the shape is kept. *)
let rec anchor_filter g incoming (f : Query.filter) =
  let sub_desc = List.exists (fun (a, _) -> a = Query.Descendant) f.fsubs in
  let ftest =
    match f.ftest with
    | Query.Wildcard when incoming = Query.Descendant || sub_desc ->
        Query.Label (label g)
    | t -> t
  in
  { Query.ftest; fsubs = List.map (fun (a, s) -> (a, anchor_filter g a s)) f.fsubs }

let anchored_twig g ~size =
  let q = twig g ~size in
  let n = List.length q in
  let rec fix i = function
    | [] -> []
    | (s : Query.step) :: rest ->
        let below =
          match rest with (r : Query.step) :: _ -> Some r.axis | [] -> None
        in
        let filter_desc =
          List.exists (fun (a, _) -> a = Query.Descendant) s.filters
        in
        let test =
          match s.test with
          | Query.Wildcard
            when i = n - 1 || s.axis = Query.Descendant
                 || below = Some Query.Descendant || filter_desc ->
              Query.Label (label g)
          | t -> t
        in
        { s with test;
          filters = List.map (fun (a, f) -> (a, anchor_filter g a f)) s.filters }
        :: fix (i + 1) rest
  in
  fix 0 q

let generalize g (q : Query.t) =
  let q =
    List.map
      (fun (s : Query.step) ->
        let filters = List.filter (fun _ -> Prng.chance g 0.3) s.filters in
        let axis =
          if Prng.chance g 0.25 then Query.Descendant else s.axis
        in
        { s with Query.axis; filters })
      q
  in
  let rec drop n = function
    | _ :: (_ :: _ as rest) when n > 0 -> drop (n - 1) rest
    | q -> q
  in
  match drop (Prng.int g 2) q with
  | [] -> q
  | (s : Query.step) :: rest ->
      let axis = if Prng.bool g then Query.Descendant else s.axis in
      { s with Query.axis } :: rest

let goal g doc =
  let paths = element_paths doc in
  if paths = [] || Prng.chance g 0.2 then anchored_twig g ~size:4
  else generalize g (Query.of_example doc (Prng.pick g paths))

(* ------------------------------------------------------------------ *)
(* Schemas                                                             *)
(* ------------------------------------------------------------------ *)

let multiplicity g =
  Prng.pick g Uschema.Multiplicity.[ One; Opt; Plus; Star ]

let clause_of g alpha =
  Uschema.Dme.clause
    (List.filter_map
       (fun l -> if Prng.chance g 0.4 then Some (l, multiplicity g) else None)
       alpha)

let schema g ~size =
  let n_rules = max 1 (min 4 size) in
  let alpha = Array.to_list labels in
  let heads = "r" :: Prng.sample g (n_rules - 1) alpha in
  let rules =
    List.map
      (fun h ->
        let n_clauses = if Prng.chance g 0.3 then 2 else 1 in
        (h, Uschema.Dme.make (List.init n_clauses (fun _ -> clause_of g alpha))))
      heads
  in
  Uschema.Schema.make ~root:"r" ~rules

(* ------------------------------------------------------------------ *)
(* Relations and graphs                                                *)
(* ------------------------------------------------------------------ *)

let csv_words =
  [| "x"; "a,b"; "he said \"hi\""; "two\nlines"; "plain"; ""; "x7" |]

let value g =
  if Prng.bool g then Relational.Value.Int (Prng.int g 10)
  else Relational.Value.Str (Prng.pick_array g csv_words)

let relation g ~name ~rows =
  let arity = Prng.int_in g 1 4 in
  let attrs = List.init arity (fun i -> Printf.sprintf "f%d" i) in
  let tuples =
    List.init (max 0 rows) (fun _ -> Array.init arity (fun _ -> value g))
  in
  Relational.Relation.make ~name ~attrs tuples

let join_instance g ~rows =
  Relational.Generator.pair_instance ~rng:g ~left_rows:(max 1 rows)
    ~right_rows:(max 1 rows) ()

let edge_labels = [ "a"; "b"; "c" ]

let graph g ~size =
  let nodes = max 1 size in
  Graphdb.Generators.random ~rng:g ~nodes ~edges:(2 * max 1 size)
    ~labels:edge_labels

let rec regex_sized g budget : Automata.Regex.t =
  if budget <= 1 then
    match Prng.int g 12 with
    | 0 -> Automata.Regex.Eps
    | 1 -> Automata.Regex.Empty
    | _ -> Automata.Regex.Sym (Prng.pick g edge_labels)
  else
    let l = max 1 ((budget - 1) / 2) in
    let r = max 1 (budget - 1 - l) in
    match Prng.int g 6 with
    | 0 | 1 -> Automata.Regex.Alt (regex_sized g l, regex_sized g r)
    | 2 | 3 -> Automata.Regex.Cat (regex_sized g l, regex_sized g r)
    | 4 -> Automata.Regex.Star (regex_sized g (budget - 1))
    | _ -> Automata.Regex.Sym (Prng.pick g edge_labels)

let regex g ~size = regex_sized g (max 1 size)

(* ------------------------------------------------------------------ *)
(* Adversarial strings                                                 *)
(* ------------------------------------------------------------------ *)

let junk_chars = "<>/*[]{}()|&;,\"'#@=?!. \t\nabcdrxy0123->"

let junk g ~size =
  String.init (max 0 size) (fun _ ->
      junk_chars.[Prng.int g (String.length junk_chars)])

let mutate_string g s =
  let edit s =
    let len = String.length s in
    if len = 0 then junk g ~size:3
    else
      let i = Prng.int g len in
      let c = String.make 1 junk_chars.[Prng.int g (String.length junk_chars)] in
      match Prng.int g 4 with
      | 0 -> String.sub s 0 i ^ String.sub s (i + 1) (len - i - 1)
      | 1 -> String.sub s 0 i ^ c ^ String.sub s i (len - i)
      | 2 -> String.sub s 0 i ^ c ^ String.sub s (i + 1) (len - i - 1)
      | _ -> String.sub s 0 i
  in
  let n = Prng.int_in g 1 3 in
  let rec go n s = if n = 0 then s else go (n - 1) (edit s) in
  go n s
