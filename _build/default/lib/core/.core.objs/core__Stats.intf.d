lib/core/stats.mli:
