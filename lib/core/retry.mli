(** Retrying unreliable oracles: exponential backoff with decorrelated
    jitter, transient/permanent classification, and a circuit breaker.

    In the crowdsourcing reading of the paper's Section 3, a question is a
    HIT: workers time out or decline, and the remedy is to re-issue the HIT —
    not to drop the question, which is what the plain skip behaviour of
    [Interact.run_flaky] does.  {!call} wraps one oracle invocation in a
    bounded retry loop; a {!breaker} watches consecutive given-up calls and
    opens after a threshold, at which point the session should stop asking
    and degrade through its fallback ladder instead of hammering a dead
    oracle.

    The breaker is the classical three-state machine:

    {v Closed --(threshold consecutive failures)--> Open
       Open   --(cooldown elapsed)--------------> Half_open
       Half_open --(probe succeeds)--> Closed | --(probe fails)--> Open v}

    Backoff sleeps are capped by the supplied {!Budget}'s remaining deadline,
    so a retry never outlives the budget; cooldowns are measured on the
    monotonic clock. *)

type policy = {
  max_attempts : int;  (** total tries per call, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** cap on any single backoff sleep *)
  breaker_threshold : int;  (** consecutive given-up calls before opening *)
  cooldown : float;  (** seconds open before allowing a half-open probe *)
  half_open_probes : int;
      (** consecutive successful half-open probes required to close an open
          breaker; a failed probe re-opens it (and restarts the cooldown)
          regardless of how many probes had succeeded *)
  sleep : float -> unit;  (** how to wait (injectable for tests) *)
}

val policy :
  ?max_attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?breaker_threshold:int ->
  ?cooldown:float ->
  ?half_open_probes:int ->
  ?sleep:(float -> unit) ->
  unit ->
  policy
(** Defaults: 3 attempts, 50ms base, 2s cap, threshold 5, 30s cooldown,
    1 half-open probe, [Unix.sleepf].  @raise Invalid_argument on a
    non-positive attempt count, threshold, or probe count. *)

val no_sleep : float -> unit
(** A sleep that returns immediately — deterministic tests, simulations. *)

type breaker
(** Mutable breaker state, shared by every {!call} of one session. *)

type breaker_state = Closed | Open | Half_open

val breaker : policy -> breaker
val breaker_state : breaker -> breaker_state

val breaker_success : breaker -> unit
(** Feed the breaker a success observed outside {!call} — e.g. a server
    counting a client's well-formed requests.  In half-open it counts toward
    the [half_open_probes] needed to close. *)

val breaker_failure : breaker -> unit
(** Feed the breaker a failure observed outside {!call}.  Counts toward
    [breaker_threshold] when closed; re-opens immediately when half-open. *)

type 'a outcome =
  | Answered of 'a * int
      (** a non-transient reply, and the attempts it took *)
  | Gave_up of 'a * int
      (** every attempt was transient (or one was permanent); the last
          reply, and the attempts made.  Counts toward the breaker. *)
  | Rejected  (** the breaker was open: the oracle was never invoked *)

val call :
  ?budget:Budget.t ->
  rng:Prng.t ->
  policy ->
  breaker ->
  classify:('a -> [ `Ok | `Transient | `Permanent ]) ->
  (unit -> 'a) ->
  'a outcome
(** [call policy breaker ~classify f] invokes [f] up to [max_attempts] times,
    sleeping a decorrelated-jitter backoff between transient replies
    (AWS-style: [delay = min max_delay (base + U(0,1)·(3·prev − base))]).
    A [`Permanent] reply stops retrying immediately.  When [budget] has a
    deadline, sleeps are capped to the time remaining and retrying stops
    once it is spent.  A half-open breaker allows a single probe. *)
