(* Tests for the twig learners: positive-example learning, consistency,
   unions, schema-aware pruning, interactive sessions. *)

let query_testable = Alcotest.testable Twig.Query.pp Twig.Query.equal

let ann doc path = Xmltree.Annotated.make doc path

(* ------------------------------------------------------------------ *)
(* Positive learner                                                    *)
(* ------------------------------------------------------------------ *)

let test_learn_single_example () =
  let d = Xmltree.Parse.term "site(people(person(name)))" in
  match Twiglearn.Positive.learn_positive [ ann d [ 0; 0; 0 ] ] with
  | Some q ->
      Alcotest.(check bool) "selects the example" true
        (Twig.Eval.selects q d [ 0; 0; 0 ]);
      Alcotest.(check bool) "anchored" true (Twig.Query.is_anchored q)
  | None -> Alcotest.fail "single example must be learnable"

let test_learn_generalizes () =
  let d1 = Xmltree.Parse.term "site(regions(africa(item(name,location))))" in
  let d2 = Xmltree.Parse.term "site(regions(asia(item(name,payment))))" in
  match
    Twiglearn.Positive.learn_positive
      [ ann d1 [ 0; 0; 0; 0 ]; ann d2 [ 0; 0; 0; 0 ] ]
  with
  | Some q ->
      Alcotest.check query_testable "wildcard region, common filter dropped"
        (Twig.Parse.query "/site/regions/*/item/name")
        q
  | None -> Alcotest.fail "learning must succeed"

let test_learn_keeps_common_filter () =
  let d1 = Xmltree.Parse.term "r(item(name,location),item(name))" in
  let d2 = Xmltree.Parse.term "r(item(location,name,extra))" in
  match Twiglearn.Positive.learn_positive [ ann d1 [ 0 ]; ann d2 [ 0 ] ] with
  | Some q ->
      Alcotest.(check bool) "location filter kept" true
        (Twig.Contain.subsumed q (Twig.Parse.query "/r/item[location][name]"))
  | None -> Alcotest.fail "learning must succeed"

let test_learn_empty () =
  Alcotest.(check bool) "no examples" true
    (Twiglearn.Positive.learn_positive [] = None)

let test_learn_different_output_labels () =
  (* Annotated nodes with different labels force a wildcard output: outside
     the anchored class. *)
  let d = Xmltree.Parse.term "r(a,b)" in
  Alcotest.(check bool) "rejected" true
    (Twiglearn.Positive.learn_positive [ ann d [ 0 ]; ann d [ 1 ] ] = None)

let test_learn_path () =
  let d1 = Xmltree.Parse.term "site(regions(africa(item(name,location))))" in
  let d2 = Xmltree.Parse.term "site(regions(asia(item(name,location))))" in
  match
    Twiglearn.Positive.learn_path [ ann d1 [ 0; 0; 0; 0 ]; ann d2 [ 0; 0; 0; 0 ] ]
  with
  | Some q ->
      Alcotest.(check bool) "no filters" true (Twig.Query.is_path q);
      Alcotest.check query_testable "path query"
        (Twig.Parse.query "/site/regions/*/item/name")
        q
  | None -> Alcotest.fail "path learning must succeed"

(* On XMark documents, the learner converges to the goal semantics with a
   handful of cross-document examples — the E1 claim in miniature. *)
let test_learn_xmark_convergence () =
  let goal = Twig.Parse.query "//person[profile]/name" in
  let docs =
    List.init 6 (fun i -> Benchkit.Xmark.generate ~scale:2.0 ~seed:(40 + i) ())
  in
  let exs =
    List.concat_map
      (fun d ->
        match Twig.Eval.select goal d with
        | p :: rest ->
            let last = List.fold_left (fun _ x -> x) p rest in
            if last = p then [ ann d p ] else [ ann d p; ann d last ]
        | [] -> [])
      docs
  in
  Alcotest.(check bool) "enough witnesses" true (List.length exs >= 6);
  match Twiglearn.Positive.learn_positive exs with
  | None -> Alcotest.fail "learning must succeed"
  | Some q ->
      List.iter
        (fun seed ->
          let fresh = Benchkit.Xmark.generate ~scale:2.0 ~seed () in
          Alcotest.(check (list (list int)))
            (Printf.sprintf "same answers on fresh doc %d" seed)
            (Twig.Eval.select goal fresh) (Twig.Eval.select q fresh))
        [ 500; 777; 999 ]

(* ------------------------------------------------------------------ *)
(* Consistency                                                         *)
(* ------------------------------------------------------------------ *)

let test_consistency_anchored_positive () =
  let d = Xmltree.Parse.term "r(item(location),item(extra))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  match Twiglearn.Consistency.anchored examples with
  | Some q ->
      Alcotest.(check bool) "selects positive" true
        (Twig.Eval.selects q d [ 0 ]);
      Alcotest.(check bool) "rejects negative" false
        (Twig.Eval.selects q d [ 1 ])
  | None -> Alcotest.fail "sample is consistent"

let test_consistency_anchored_negative () =
  (* Two identical subtrees, one positive one negative: inconsistent. *)
  let d = Xmltree.Parse.term "r(item(name),item(name))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  Alcotest.(check bool) "inconsistent" false
    (Twiglearn.Consistency.anchored_consistent examples)

let test_bounded_search_finds () =
  let d = Xmltree.Parse.term "r(item(location),item(extra))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  match Twiglearn.Consistency.bounded ~max_size:3 examples with
  | Some q ->
      Alcotest.(check bool) "consistent" true
        (Core.Example.consistent_with Twig.Eval.selects_example q examples)
  | None -> Alcotest.fail "a small consistent twig exists"

let test_bounded_search_exhausts () =
  let d = Xmltree.Parse.term "r(item(name),item(name))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  Alcotest.(check bool) "no consistent twig at all" true
    (Twiglearn.Consistency.bounded ~max_size:4 examples = None)

(* Fuel exhaustion is deterministic: the same budget trips at the same
   candidate, and Fallback degrades to exactly what the approximate learner
   would produce on its own. *)
let test_fallback_degrades_deterministically () =
  let d = Xmltree.Parse.term "r(a(b),a(b))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  (* No twig separates identical siblings, so the exact search would burn
     through the whole size-6 space; 50 fuel stops it almost immediately. *)
  let budget = Core.Budget.create ~fuel:50 () in
  let outcome = Twiglearn.Fallback.learn ~budget ~max_size:6 examples in
  Alcotest.(check bool) "degraded" true outcome.degraded;
  (match outcome.level with
  | Twiglearn.Fallback.Approximate -> ()
  | _ -> Alcotest.fail "anchored cannot separate identical siblings either");
  let approx =
    match Twiglearn.Approximate.learn examples with
    | Some r -> r
    | None -> Alcotest.fail "approximate learner must produce a query"
  in
  (match outcome.query with
  | Some q ->
      Alcotest.check query_testable "fallback = approximate learner" approx.query q
  | None -> Alcotest.fail "fallback must surface the approximate query");
  Alcotest.(check int) "dropped annotations reported"
    (List.length approx.dropped) outcome.dropped;
  Alcotest.(check bool) "budget spend reported" true
    (outcome.spent.fuel_spent >= 50);
  (* Same fuel, same trip point: the outcome is reproducible. *)
  let again =
    Twiglearn.Fallback.learn ~budget:(Core.Budget.create ~fuel:50 ()) ~max_size:6
      examples
  in
  Alcotest.(check int) "deterministic fuel accounting"
    outcome.spent.fuel_spent again.spent.fuel_spent

let test_fallback_exact_with_room () =
  let d = Xmltree.Parse.term "r(item(location),item(extra))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  let outcome =
    Twiglearn.Fallback.learn
      ~budget:(Core.Budget.create ~fuel:1_000_000 ())
      ~max_size:3 examples
  in
  Alcotest.(check bool) "not degraded" false outcome.degraded;
  match (outcome.level, outcome.query) with
  | Twiglearn.Fallback.Exact, Some q ->
      Alcotest.(check bool) "consistent" true
        (Core.Example.consistent_with Twig.Eval.selects_example q examples)
  | _ -> Alcotest.fail "a generous budget must reach the exact rung"

let test_enumerate_counts () =
  let n1 = Twiglearn.Enumerate.count ~alphabet:[ "a" ] ~max_nodes:1 () in
  (* Spines of one node: 2 axes times 2 tests (label a or wildcard); no
     filters fit in the budget. *)
  Alcotest.(check int) "four one-node queries" 4 n1;
  let n2 = Twiglearn.Enumerate.count ~alphabet:[ "a" ] ~max_nodes:2 () in
  Alcotest.(check bool) "grows" true (n2 > n1);
  Alcotest.(check bool) "exponential growth" true
    (Twiglearn.Enumerate.count ~alphabet:[ "a"; "b" ] ~max_nodes:4 () > 10 * n2)

(* ------------------------------------------------------------------ *)
(* Union learner                                                       *)
(* ------------------------------------------------------------------ *)

let test_union_two_clusters () =
  (* Positives with different labels cannot be one anchored twig, but a
     union covers them. *)
  let d = Xmltree.Parse.term "r(a(x),b(y),c)" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.positive (ann d [ 1 ]);
      Core.Example.negative (ann d [ 2 ]);
    ]
  in
  Alcotest.(check bool) "trivial consistency" true
    (Twiglearn.Union.consistent examples);
  match Twiglearn.Union.learn examples with
  | Some union ->
      Alcotest.(check int) "two twigs" 2 (List.length union);
      Alcotest.(check bool) "selects both positives" true
        (Twiglearn.Union.selects union (ann d [ 0 ])
        && Twiglearn.Union.selects union (ann d [ 1 ]));
      Alcotest.(check bool) "rejects negative" false
        (Twiglearn.Union.selects union (ann d [ 2 ]))
  | None -> Alcotest.fail "union learnable"

let test_union_merges_when_possible () =
  let d = Xmltree.Parse.term "r(a(x),a(y),b)" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.positive (ann d [ 1 ]);
      Core.Example.negative (ann d [ 2 ]);
    ]
  in
  match Twiglearn.Union.learn examples with
  | Some union -> Alcotest.(check int) "one cluster suffices" 1 (List.length union)
  | None -> Alcotest.fail "union learnable"

let test_union_inconsistent () =
  let d = Xmltree.Parse.term "r(a,a)" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  Alcotest.(check bool) "detected" false (Twiglearn.Union.consistent examples);
  Alcotest.(check bool) "learn refuses" true (Twiglearn.Union.learn examples = None)

(* ------------------------------------------------------------------ *)
(* Schema-aware learning                                               *)
(* ------------------------------------------------------------------ *)

let test_prune_drops_implied () =
  let g = Uschema.Depgraph.of_schema Benchkit.Xmark.schema in
  let q = Twig.Parse.query "/site/people/person[name][emailaddress][profile]/name" in
  let pruned = Twiglearn.Schema_aware.prune g q in
  (* name and emailaddress are required of person; profile is optional. *)
  Alcotest.check query_testable "only profile survives"
    (Twig.Parse.query "/site/people/person[profile]/name")
    pruned

let test_prune_keeps_wildcards () =
  let g = Uschema.Depgraph.of_schema Benchkit.Xmark.schema in
  let q = Twig.Parse.query "/site/regions/*[item]/item/name" in
  let pruned = Twiglearn.Schema_aware.prune g q in
  Alcotest.check query_testable "wildcard hosts untouched" q pruned

let test_prune_recurses_into_filters () =
  let g = Uschema.Depgraph.of_schema Benchkit.Xmark.schema in
  (* Inside the profile filter, @income is required and age optional. *)
  let q = Twig.Parse.query "//person[profile[@income][age]]/name" in
  let pruned = Twiglearn.Schema_aware.prune g q in
  Alcotest.check query_testable "inner implied filter dropped"
    (Twig.Parse.query "//person[profile[age]]/name")
    pruned

let test_schema_aware_learn_shrinks () =
  let goal = Twig.Parse.query "//person[profile]/name" in
  let docs =
    List.init 4 (fun i -> Benchkit.Xmark.generate ~scale:2.0 ~seed:(60 + i) ())
  in
  let exs =
    List.filter_map
      (fun d ->
        match Twig.Eval.select goal d with
        | p :: _ -> Some (ann d p)
        | [] -> None)
      docs
  in
  match Twiglearn.Schema_aware.size_reduction ~schema:Benchkit.Xmark.schema exs with
  | Some (before, after) ->
      Alcotest.(check bool) "strictly smaller" true (after < before);
      Alcotest.(check bool) "substantially smaller" true
        (float_of_int after < 0.5 *. float_of_int before)
  | None -> Alcotest.fail "learning must succeed"

(* ------------------------------------------------------------------ *)
(* N-ary tuple extraction                                              *)
(* ------------------------------------------------------------------ *)

let test_nary_lca () =
  Alcotest.(check (list int)) "common prefix" [ 0; 1 ]
    (Twiglearn.Nary.lca [ [ 0; 1; 0 ]; [ 0; 1; 2; 0 ] ]);
  Alcotest.(check (list int)) "identical" [ 0; 1 ]
    (Twiglearn.Nary.lca [ [ 0; 1 ]; [ 0; 1 ] ]);
  Alcotest.(check (list int)) "root" []
    (Twiglearn.Nary.lca [ [ 0 ]; [ 1 ] ])

let nary_doc =
  Xmltree.Parse.term
    "people(person(name(#Aki),address(city(#Tampa))),\
     person(name(#Bea),address(city(#Lille))))"

let test_nary_learn_and_extract () =
  (* Two annotated (name, city) tuples. *)
  let examples =
    [
      Twiglearn.Nary.example nary_doc [ [ 0; 0 ]; [ 0; 1; 0 ] ];
      Twiglearn.Nary.example nary_doc [ [ 1; 0 ]; [ 1; 1; 0 ] ];
    ]
  in
  match Twiglearn.Nary.learn examples with
  | None -> Alcotest.fail "tuple query learnable"
  | Some q ->
      Alcotest.(check int) "binary" 2 (List.length q.columns);
      let values = Twiglearn.Nary.extract_values q nary_doc in
      Alcotest.(check (list (list string))) "both tuples"
        [ [ "Aki"; "Tampa" ]; [ "Bea"; "Lille" ] ]
        values;
      (* Works on a fresh document of the same shape. *)
      let fresh =
        Xmltree.Parse.term
          "people(person(name(#Cy),address(city(#Kyoto))))"
      in
      Alcotest.(check (list (list string))) "fresh doc"
        [ [ "Cy"; "Kyoto" ] ]
        (Twiglearn.Nary.extract_values q fresh)

let test_nary_anchor_column () =
  (* A unary tuple whose component IS the anchor. *)
  let examples = [ Twiglearn.Nary.example nary_doc [ [ 0 ] ] ] in
  match Twiglearn.Nary.learn examples with
  | None -> Alcotest.fail "learnable"
  | Some q ->
      Alcotest.(check bool) "empty projection" true (List.hd q.columns = []);
      Alcotest.(check int) "selects both persons" 2
        (List.length (Twiglearn.Nary.extract q nary_doc))

let test_nary_wildcard_generalization () =
  let d =
    Xmltree.Parse.term "r(row(a(#1),k1(v(#x))),row(a(#2),k2(v(#y))))"
  in
  let examples =
    [
      Twiglearn.Nary.example d [ [ 0; 0 ]; [ 0; 1; 0 ] ];
      Twiglearn.Nary.example d [ [ 1; 0 ]; [ 1; 1; 0 ] ];
    ]
  in
  match Twiglearn.Nary.learn examples with
  | None -> Alcotest.fail "learnable"
  | Some q ->
      (* k1 vs k2 merge into a wildcard step. *)
      Alcotest.(check bool) "wildcard in projection" true
        (List.exists (List.mem Twig.Query.Wildcard) q.columns);
      Alcotest.(check int) "both tuples extracted" 2
        (List.length (Twiglearn.Nary.extract q d))

let test_nary_depth_mismatch () =
  let d = Xmltree.Parse.term "r(row(a(#1)),row(deep(a(#2))))" in
  let examples =
    [
      Twiglearn.Nary.example d [ [ 0 ]; [ 0; 0 ] ];
      Twiglearn.Nary.example d [ [ 1 ]; [ 1; 0; 0 ] ];
    ]
  in
  Alcotest.(check bool) "outside the class" true
    (Twiglearn.Nary.learn examples = None)

let test_nary_to_relation () =
  let examples =
    [
      Twiglearn.Nary.example nary_doc [ [ 0; 0 ]; [ 0; 1; 0 ] ];
      Twiglearn.Nary.example nary_doc [ [ 1; 0 ]; [ 1; 1; 0 ] ];
    ]
  in
  match Twiglearn.Nary.learn examples with
  | None -> Alcotest.fail "learnable"
  | Some q ->
      let rel =
        Twiglearn.Nary.to_relation ~name:"people" ~attrs:[ "name"; "city" ] q
          nary_doc
      in
      Alcotest.(check int) "two rows" 2 (Relational.Relation.cardinal rel);
      Alcotest.(check bool) "row content" true
        (Relational.Relation.mem
           [| Relational.Value.Str "Aki"; Relational.Value.Str "Tampa" |]
           rel)

(* ------------------------------------------------------------------ *)
(* Approximate learning                                                *)
(* ------------------------------------------------------------------ *)

let test_approximate_consistent_sample_unchanged () =
  let d = Xmltree.Parse.term "r(item(location),item(extra))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  match Twiglearn.Approximate.learn examples with
  | None -> Alcotest.fail "learnable"
  | Some result ->
      Alcotest.(check int) "nothing dropped" 0 (List.length result.dropped);
      Alcotest.(check int) "no training errors" 0 result.training_errors

let test_approximate_drops_noise () =
  (* Two identical subtrees labeled oppositely: inconsistent; dropping one
     annotation restores consistency. *)
  let d = Xmltree.Parse.term "r(item(name),item(name),widget)" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
      Core.Example.negative (ann d [ 2 ]);
    ]
  in
  Alcotest.(check bool) "exact learner refuses" true
    (Twiglearn.Consistency.anchored examples = None);
  match Twiglearn.Approximate.learn examples with
  | None -> Alcotest.fail "approximate learner must cope"
  | Some result ->
      Alcotest.(check int) "one annotation ignored" 1
        (List.length result.dropped);
      Alcotest.(check int) "no remaining errors" 0 result.training_errors;
      (* The widget negative must still be respected. *)
      Alcotest.(check bool) "clean negative respected" false
        (Twig.Eval.selects_example result.query (ann d [ 2 ]))

let test_approximate_budget () =
  let d = Xmltree.Parse.term "r(item(name),item(name))" in
  let examples =
    [
      Core.Example.positive (ann d [ 0 ]);
      Core.Example.negative (ann d [ 1 ]);
    ]
  in
  match Twiglearn.Approximate.learn ~max_dropped:0 examples with
  | None -> Alcotest.fail "still returns a best effort"
  | Some result ->
      Alcotest.(check int) "no drops allowed" 0 (List.length result.dropped);
      Alcotest.(check int) "conflict reported as error" 1
        result.training_errors

(* ------------------------------------------------------------------ *)
(* LGG ablation flags                                                  *)
(* ------------------------------------------------------------------ *)

let test_ablation_naive_product_still_sound () =
  let d1 = Xmltree.Parse.term "r(i(a,b),j)" and d2 = Xmltree.Parse.term "r(i(a,c))" in
  let q1 = Twig.Query.of_example d1 [ 0 ] and q2 = Twig.Query.of_example d2 [ 0 ] in
  let g = Twig.Lgg.lgg ~label_guided:false q1 q2 in
  Alcotest.(check bool) "contains q1" true (Twig.Contain.subsumed q1 g);
  Alcotest.(check bool) "contains q2" true (Twig.Contain.subsumed q2 g);
  Alcotest.(check bool) "selects both examples" true
    (Twig.Eval.selects g d1 [ 0 ] && Twig.Eval.selects g d2 [ 0 ])

let test_ablation_rescue_matters () =
  (* Same label at different depths: only the rescue keeps it. *)
  let d1 = Xmltree.Parse.term "r(i(t(k)))" and d2 = Xmltree.Parse.term "r(i(p(t(k))))" in
  let q1 = Twig.Query.of_example d1 [ 0 ] and q2 = Twig.Query.of_example d2 [ 0 ] in
  let with_rescue = Twig.Lgg.lgg ~rescue:true q1 q2 in
  let without = Twig.Lgg.lgg ~rescue:false q1 q2 in
  let mentions_k q = List.mem "k" (Twig.Query.labels q) in
  Alcotest.(check bool) "rescued keeps k" true (mentions_k with_rescue);
  Alcotest.(check bool) "ablated loses k" false (mentions_k without)

(* ------------------------------------------------------------------ *)
(* Interactive                                                         *)
(* ------------------------------------------------------------------ *)

let test_interactive_consistent_with_oracle () =
  let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:5 () in
  let goal = Twig.Parse.query "//person/name" in
  let outcome = Twiglearn.Interactive.run_with_goal ~doc ~goal () in
  match outcome.query with
  | None -> Alcotest.fail "a candidate must exist"
  | Some q ->
      List.iter
        (fun (item, label) ->
          Alcotest.(check bool) "answers respected" label
            (Twig.Eval.selects_example q item))
        outcome.asked

let test_interactive_prunes_most_nodes () =
  let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:6 () in
  let goal = Twig.Parse.query "//item/location" in
  let outcome = Twiglearn.Interactive.run_with_goal ~doc ~goal () in
  (* The labelable pool excludes text nodes. *)
  let pool = List.length (Twiglearn.Interactive.items_of_doc doc) in
  Alcotest.(check int) "pool covered" pool (outcome.questions + outcome.pruned);
  Alcotest.(check bool) "most nodes pruned, not asked" true
    (outcome.pruned > pool / 2)

let test_interactive_label_diverse_cheaper () =
  let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:6 () in
  let goal = Twig.Parse.query "//open_auction[bidder]/current" in
  let naive = Twiglearn.Interactive.run_with_goal ~doc ~goal () in
  let diverse =
    Twiglearn.Interactive.run_with_goal
      ~strategy:Twiglearn.Interactive.label_diverse_strategy ~doc ~goal ()
  in
  Alcotest.(check bool) "diverse asks fewer questions" true
    (diverse.questions < naive.questions);
  match diverse.query with
  | None -> Alcotest.fail "candidate expected"
  | Some q ->
      Alcotest.(check (list (list int))) "answers recovered"
        (Twig.Eval.select goal doc) (Twig.Eval.select q doc)

(* ------------------------------------------------------------------ *)
(* Hot path: incremental LGG and parallel determined-scans             *)
(* ------------------------------------------------------------------ *)

let qcheck = QCheck_alcotest.to_alcotest

let hotpath_goals =
  [| "//person/name"; "//item[location]/name"; "//open_auction/current" |]

let hotpath_witnesses ~seed ~goal_idx =
  let doc = Benchkit.Xmark.generate ~scale:0.3 ~seed () in
  let goal = Twig.Parse.query hotpath_goals.(goal_idx) in
  (doc, List.map (ann doc) (Twig.Eval.select goal doc))

(* The incremental accumulator is the batch fold's intermediate value, so
   folding [add] over any example sequence and then [candidate] must produce
   exactly [learn_positive] on the same list — including agreeing on [None]
   when the sequence leaves the anchored fragment (the poisoned case appends
   the root, whose label differs from every witness's). *)
let prop_incremental_equals_batch =
  QCheck.Test.make ~name:"incremental lgg ≡ batch lgg (xmark)" ~count:25
    QCheck.(triple (int_bound 1000) (int_bound 2) bool)
    (fun (seed, goal_idx, poison) ->
      let doc, witnesses = hotpath_witnesses ~seed ~goal_idx in
      let items = if poison then witnesses @ [ ann doc [] ] else witnesses in
      let module I = Twiglearn.Positive.Incremental in
      let batch = Twiglearn.Positive.learn_positive items in
      let inc = I.candidate (List.fold_left I.add I.empty items) in
      match (batch, inc) with
      | None, None -> true
      | Some b, Some i -> Twig.Query.equal b i
      | _ -> false)

(* [extend_consistent] skips the minimize of [candidate ∘ add]; the contract
   is that the raw result is selection-equivalent to the minimized one, and
   that both agree on leaving the fragment. *)
let prop_extend_consistent_equiv =
  QCheck.Test.make ~name:"extend_consistent ≡ candidate ∘ add" ~count:10
    QCheck.(pair (int_bound 1000) (int_bound 2))
    (fun (seed, goal_idx) ->
      let _, witnesses = hotpath_witnesses ~seed ~goal_idx in
      let module I = Twiglearn.Positive.Incremental in
      let rec go acc = function
        | [] -> true
        | item :: rest ->
            let ok =
              match (I.extend_consistent acc item, I.candidate (I.add acc item)) with
              | None, None -> true
              | Some raw, Some q -> Twig.Contain.equiv raw q
              | _ -> false
            in
            ok && go (I.add acc item) rest
      in
      go I.empty witnesses)

(* The pool merge is input-order deterministic: the same session asks the
   same questions in the same order and writes byte-identical journals at
   every pool size. *)
let test_parallel_scan_deterministic () =
  let doc = Benchkit.Xmark.generate ~scale:0.4 ~seed:11 () in
  let goal = Twig.Parse.query "//person[profile]/name" in
  let items = Twiglearn.Interactive.items_of_doc doc in
  let run n =
    let path = Filename.temp_file "learnq_pool_test" ".wal" in
    let journal =
      Core.Journal.create ~sync:Core.Journal.Off ~path
        { Core.Journal.seed = 1; engine = "test-pool"; config = "pool-determinism" }
    in
    let pool = Core.Pool.create n in
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          Core.Pool.shutdown pool;
          Core.Journal.close journal)
        (fun () ->
          Twiglearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1)
            ~journal:(journal, Twiglearn.Interactive.encode_item)
            ~pool
            ~oracle:(fun it ->
              Core.Flaky.Label (Twig.Eval.selects_example goal it))
            ~items ())
    in
    let ic = open_in_bin path in
    let bytes = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    let asked =
      List.map
        (fun (it, l) -> (Twiglearn.Interactive.encode_item it, l))
        outcome.Twiglearn.Interactive.Loop.asked
    in
    (outcome.Twiglearn.Interactive.Loop.questions, asked, bytes)
  in
  let q1, a1, b1 = run 1 in
  Alcotest.(check bool) "session asked questions" true (q1 > 0);
  List.iter
    (fun n ->
      let qn, an, bn = run n in
      Alcotest.(check int) (Printf.sprintf "questions at pool %d" n) q1 qn;
      Alcotest.(check (list (pair string bool)))
        (Printf.sprintf "question sequence at pool %d" n)
        a1 an;
      Alcotest.(check string) (Printf.sprintf "journal bytes at pool %d" n) b1 bn)
    [ 2; 4 ]

let () =
  Alcotest.run "twiglearn"
    [
      ( "positive",
        [
          Alcotest.test_case "single example" `Quick test_learn_single_example;
          Alcotest.test_case "generalizes" `Quick test_learn_generalizes;
          Alcotest.test_case "keeps common filter" `Quick test_learn_keeps_common_filter;
          Alcotest.test_case "empty" `Quick test_learn_empty;
          Alcotest.test_case "different output labels" `Quick test_learn_different_output_labels;
          Alcotest.test_case "path learner" `Quick test_learn_path;
          Alcotest.test_case "xmark convergence" `Slow test_learn_xmark_convergence;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "anchored consistent" `Quick test_consistency_anchored_positive;
          Alcotest.test_case "anchored inconsistent" `Quick test_consistency_anchored_negative;
          Alcotest.test_case "bounded finds" `Quick test_bounded_search_finds;
          Alcotest.test_case "bounded exhausts" `Quick test_bounded_search_exhausts;
          Alcotest.test_case "fallback degrades deterministically" `Quick
            test_fallback_degrades_deterministically;
          Alcotest.test_case "fallback exact with room" `Quick
            test_fallback_exact_with_room;
          Alcotest.test_case "enumeration counts" `Quick test_enumerate_counts;
        ] );
      ( "union",
        [
          Alcotest.test_case "two clusters" `Quick test_union_two_clusters;
          Alcotest.test_case "merges when possible" `Quick test_union_merges_when_possible;
          Alcotest.test_case "inconsistent" `Quick test_union_inconsistent;
        ] );
      ( "schema-aware",
        [
          Alcotest.test_case "drops implied" `Quick test_prune_drops_implied;
          Alcotest.test_case "keeps wildcards" `Quick test_prune_keeps_wildcards;
          Alcotest.test_case "recurses into filters" `Quick test_prune_recurses_into_filters;
          Alcotest.test_case "learn shrinks" `Slow test_schema_aware_learn_shrinks;
        ] );
      ( "nary",
        [
          Alcotest.test_case "lca" `Quick test_nary_lca;
          Alcotest.test_case "learn and extract" `Quick test_nary_learn_and_extract;
          Alcotest.test_case "anchor column" `Quick test_nary_anchor_column;
          Alcotest.test_case "wildcard generalization" `Quick test_nary_wildcard_generalization;
          Alcotest.test_case "depth mismatch" `Quick test_nary_depth_mismatch;
          Alcotest.test_case "to relation" `Quick test_nary_to_relation;
        ] );
      ( "approximate",
        [
          Alcotest.test_case "consistent unchanged" `Quick test_approximate_consistent_sample_unchanged;
          Alcotest.test_case "drops noise" `Quick test_approximate_drops_noise;
          Alcotest.test_case "budget" `Quick test_approximate_budget;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "naive product sound" `Quick test_ablation_naive_product_still_sound;
          Alcotest.test_case "rescue matters" `Quick test_ablation_rescue_matters;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "consistent with oracle" `Slow test_interactive_consistent_with_oracle;
          Alcotest.test_case "prunes most nodes" `Slow test_interactive_prunes_most_nodes;
          Alcotest.test_case "label-diverse cheaper" `Slow test_interactive_label_diverse_cheaper;
        ] );
      ( "hotpath",
        [
          qcheck prop_incremental_equals_batch;
          qcheck prop_extend_consistent_equiv;
          Alcotest.test_case "parallel scan deterministic" `Quick
            test_parallel_scan_deterministic;
        ] );
    ]
