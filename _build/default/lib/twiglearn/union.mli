(** Learning unions of twig queries.

    The paper proposes unions as a way around intractable consistency:
    "considering richer query languages e.g., unions of twig queries for
    which testing consistency is trivial but learnability remains an open
    question" (Section 2).  Consistency is indeed trivial — the union of
    the positives' characteristic queries is consistent iff no
    characteristic query selects a negative — and this module implements the
    natural greedy learner: grow clusters of positives whose LGG stays clear
    of every negative, one twig per cluster. *)

type instance = Xmltree.Annotated.t

val consistent : instance Core.Example.t list -> bool
(** The trivial test: no positive's characteristic query selects a
    negative (and every example document contains its annotated node). *)

val learn : instance Core.Example.t list -> Twig.Query.t list option
(** Greedy cover of the positives by anchored twigs, each consistent with
    all negatives; [None] when {!consistent} fails or some cluster cannot be
    generalized inside the anchored fragment.  The returned union selects
    every positive and no negative. *)

val selects : Twig.Query.t list -> instance -> bool
(** Union semantics. *)
