lib/xmltree/tree.mli: Format
