(** Request-scoped observability for the serving path: trace ids, an
    always-on flight recorder, and labeled sliding-window metrics.

    {!Telemetry} is the engine layer — single-domain, off by default,
    zero-cost in the innermost loops.  [Obs] is the server layer: every
    structure is thread- and domain-safe, because the daemon answers
    requests on connection systhreads (all sharing the main domain) and
    executes session work on {!Pool} worker domains, and a request's trace
    must survive that hop.

    Nothing here may perturb engine behaviour: no journal writes, no
    question-sequence effects.  The [telemetry-transparency] fuzz oracle
    checks that enabled-vs-disabled observability yields identical
    transcripts and journal bytes. *)

(** {1 Trace ids}

    A trace id names one request end to end.  Storage is keyed by
    [(domain, thread)] — {e not} [Domain.DLS], which cannot distinguish two
    connection systhreads on the main domain. *)

module Trace : sig
  val mint : unit -> string
  (** A fresh process-unique id ([t<pid>-<seq>]). *)

  val valid : string -> bool
  (** Accept an inbound id: non-empty, at most 64 chars, alphanumeric plus
      [-_.] — anything else is replaced by a minted id rather than echoed
      into logs and headers. *)

  val set : string option -> unit
  (** Install (or clear) the calling thread's trace id. *)

  val current : unit -> string option

  val with_trace : string -> (unit -> 'a) -> 'a
  (** Run with the id installed, restoring the previous id even on raise.
      Used to carry a captured trace onto a pool worker domain. *)
end

(** {1 Flight recorder}

    A fixed-size ring of recent events, always on, dumped when something
    goes wrong (quarantine, watchdog trip) or on demand
    ([/debug/flightrecorder]).  Writers lock only the slot their domain
    hashes to; the critical section is two array stores.  Recording is a
    single atomic load when disabled. *)

module Recorder : sig
  type phase = Instant | Begin | End

  type event = {
    ev_ns : int64;  (** monotonic timestamp *)
    ev_dom : int;  (** recording domain *)
    ev_trace : string option;  (** the recording thread's trace id *)
    ev_name : string;
    ev_detail : string;
    ev_phase : phase;
  }

  val record : ?detail:string -> ?phase:phase -> string -> unit
  (** Append an event; overwrites the oldest once the ring is full. *)

  val with_span : ?detail:string -> string -> (unit -> 'a) -> 'a
  (** Paired [Begin]/[End] events around [f] (closed on raise).  Chrome's
      trace viewer reassembles these into a span tree per thread lane;
      {!trace_events} filters one request's tree by trace id. *)

  val set_recording : bool -> unit
  (** Default [true].  The transparency oracle and the soak's baseline
      pass turn it off. *)

  val is_recording : unit -> bool

  val set_capacity : int -> unit
  (** Total event capacity across all ring slots (default 4096).  Resets
      the buffers. *)

  val clear : unit -> unit

  val events : unit -> event list
  (** All retained events, oldest first across slots. *)

  val trace_events : string -> event list
  (** Retained events stamped with the given trace id. *)

  val dump_json : unit -> string
  (** Chrome [trace_event] JSON: instant events plus begin/end span pairs,
      one lane per domain, [args.trace] linking lanes of one request. *)

  val dump_to_file : string -> unit
  (** Best-effort write of {!dump_json}; never raises. *)
end

(** {1 Labeled metrics with sliding windows}

    Dimensioned counters and windowed latency histograms, keyed by label
    sets ([tenant], [engine], [route], [outcome], …).  Unlike the PR3
    registry these are always on and thread-safe; unlike since-boot
    histograms the windowed percentiles describe the {e last minute}, not
    the whole run. *)

module Labeled : sig
  val incr : ?by:int -> string -> (string * string) list -> unit
  (** Bump a labeled counter, creating the family/series on first use. *)

  val counter_value : string -> (string * string) list -> int

  val observe : ?span:float -> string -> (string * string) list -> float -> unit
  (** Record a sample into a sliding-window histogram: 6 sub-windows of
      [span] seconds each (default 10 s — a one-minute sliding view).
      Rotation is lazy (no ticker thread); [span] is fixed at the family's
      first use. *)

  val window_stats :
    string -> (string * string) list -> (int * float * float * float * float) option
  (** [(count, sum, p50, p90, p99)] over the live window, or [None] for an
      unknown series. *)

  val window_count : string -> (string * string) list -> int
  val window_percentile : string -> (string * string) list -> float -> float
  (** 0. on an empty window. *)

  val series_count : string -> int
  (** Distinct label sets in a family (includes the overflow series). *)

  val set_max_series : int -> unit
  (** Per-family label-cardinality cap (default 64).  Past the cap, new
      label sets collapse into one [{overflow="true"}] series so the
      overflow is visible instead of unbounded. *)

  val set_clock : (unit -> float) option -> unit
  (** Test hook: window rotation reads this clock ([None] = monotonic). *)

  val prometheus : unit -> string
  (** Text exposition of every family: counters as labeled series,
      windowed histograms as labeled summaries (quantiles + [_sum]/[_count]
      over the live window). *)

  val reset : unit -> unit
end

val reset : unit -> unit
(** Clear the recorder and all labeled metrics; re-enable recording.  For
    tests. *)
