(* The four cross-model data-exchange scenarios of Figure 1, end to end,
   each with its source query learned from examples rather than written by
   an expert (the thesis' motivating application).

   Run with:  dune exec examples/data_exchange.exe *)

let banner n title =
  Printf.printf "\n==== Scenario %d: %s ====\n" n title

let first_lines ?(n = 12) s =
  let lines = String.split_on_char '\n' s in
  let shown = List.filteri (fun i _ -> i < n) lines in
  String.concat "\n" shown
  ^ if List.length lines > n then "\n  ..." else ""

(* Scenario 1 — publishing relational data as XML. *)
let scenario1 () =
  banner 1 "relational -> XML (publishing)";
  let rng = Core.Prng.create 1 in
  let inst =
    Relational.Generator.pair_instance ~rng ~left_rows:6 ~right_rows:6 ()
  in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  let goal = Joinlearn.Signature.of_predicate space inst.planted in
  let examples =
    Joinlearn.Interactive.items_of space inst.left inst.right
    |> List.map (fun (it : Joinlearn.Interactive.item) ->
           ((it.left, it.right), Joinlearn.Signature.subset goal it.mask))
  in
  match
    Exchange.Mapping.Rel_to_xml.run ~left:inst.left ~right:inst.right ~examples
  with
  | None -> print_endline "no consistent join predicate"
  | Some result ->
      Printf.printf "learned join predicate: %s\n"
        (String.concat ", "
           (List.map
              (fun (i, j) -> Printf.sprintf "a%d=b%d" i j)
              result.predicate));
      Printf.printf "published XML:\n%s\n"
        (first_lines (Xmltree.Print.to_xml result.published))

(* Scenario 2 — shredding XML into a relational table, with the tuple query
   itself learned from annotated (name, city) pairs (n-ary learning). *)
let scenario2 () =
  banner 2 "XML -> relational (shredding)";
  let doc = Benchkit.Xmark.generate ~scale:1.5 ~seed:2 () in
  (* The annotator marks (person-name, person-city) component pairs; use the
     goal queries only to simulate those annotations. *)
  let names = Twig.Eval.select (Twig.Parse.query "//person/name") doc in
  let cities =
    Twig.Eval.select (Twig.Parse.query "//person/address/city") doc
  in
  let tuples =
    List.filter_map
      (fun city ->
        (* Pair each city with the name under the same person. *)
        let person = List.filteri (fun i _ -> i < 2) city in
        List.find_opt
          (fun name -> List.filteri (fun i _ -> i < 2) name = person)
          names
        |> Option.map (fun name -> [ name; city ]))
      cities
    |> List.filteri (fun i _ -> i < 3)
  in
  let examples = List.map (Twiglearn.Nary.example doc) tuples in
  match Twiglearn.Nary.learn examples with
  | None -> print_endline "tuple query not learnable"
  | Some q ->
      Format.printf "learned tuple query: %a@." Twiglearn.Nary.pp q;
      let rel =
        Twiglearn.Nary.to_relation ~name:"person" ~attrs:[ "name"; "city" ] q
          doc
      in
      Format.printf "shredded relation:@.%a@." Relational.Relation.pp rel

(* Scenario 3 — shredding XML into RDF. *)
let scenario3 () =
  banner 3 "XML -> RDF (shredding)";
  let doc =
    Xmltree.Parse.xml
      {|<site><people>
          <person id="p0"><name>Aki</name><address><city>Tampa</city></address></person>
          <person id="p1"><name>Bea</name><address><city>Lille</city></address></person>
        </people></site>|}
  in
  let annotations = Twig.Eval.select (Twig.Parse.query "//address") doc in
  match Exchange.Mapping.Xml_to_rdf.run ~doc ~annotations with
  | None -> print_endline "scope query not learnable"
  | Some result ->
      Format.printf "learned scope query: %a@." Twig.Query.pp result.query;
      Format.printf "shredded triples:@.%a@." Exchange.Rdf.pp result.triples;
      (* The shredded store is queryable with SPARQL-style patterns. *)
      let q = Exchange.Bgp.parse "?a city ?c . ?c value ?v" in
      Printf.printf "SPARQL-style query over the shredded data (%s):\n"
        "?a city ?c . ?c value ?v";
      List.iter
        (fun row -> Printf.printf "  city value: %s\n" (List.hd row))
        (Exchange.Bgp.select ~vars:[ "v" ] result.triples q)

(* Scenario 4 — publishing graph query answers as XML. *)
let scenario4 () =
  banner 4 "graph -> XML (publishing)";
  let rng = Core.Prng.create 4 in
  let graph = Graphdb.Generators.geo ~rng ~cities:8 () in
  let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in
  let answers = Graphdb.Rpq.eval goal graph in
  let non_answer =
    List.concat_map (fun u -> List.init 8 (fun v -> (u, v))) (List.init 8 Fun.id)
    |> List.find (fun p -> not (List.mem p answers))
  in
  let examples =
    List.map (fun p -> (p, true)) (List.filteri (fun i _ -> i < 3) answers)
    @ [ (non_answer, false) ]
  in
  match Exchange.Mapping.Graph_to_xml.run ~graph ~examples with
  | None -> print_endline "path query not learnable"
  | Some result ->
      Format.printf "learned path query: %a@." Pathlearn.Words.pp result.query;
      Printf.printf "published XML:\n%s\n"
        (first_lines (Xmltree.Print.to_xml result.published))

let () =
  print_endline
    "Figure 1 of the paper: data exchange between heterogeneous models,\n\
     with every source query learned from examples.";
  scenario1 ();
  scenario2 ();
  scenario3 ();
  scenario4 ();
  print_newline ()
