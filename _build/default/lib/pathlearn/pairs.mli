(** Learning path queries from labeled {e node pairs} of a graph — the
    setting of the paper's geographic scenario: "the user has to select two
    vertices from the graph … the user may also want to impose certain
    restrictions on the paths" (Section 3).

    A pair is positive when {e some} path between the nodes must match the
    goal query, negative when {e no} path may.  Witness words are not given.
    The learner first tries generate-and-test over path expressions seeded
    by the first positive pair's connecting words, validating each candidate
    against the pair semantics directly; when no expression of that shape
    fits, it falls back to witness selection with counterexample-guided
    refinement:

    + harvest the words of bounded-length paths between every negative
      pair — all of them are negative words;
    + for each positive pair pick the shortest connecting word that is not
      already negative;
    + learn a word-level hypothesis ({!Words.learn});
    + evaluate it on the graph; every negative pair it still selects
      contributes its accepted witness word as a new negative word;
      repeat until clean or out of rounds. *)

type example = (int * int) Core.Example.t

val learn :
  ?max_len:int ->
  ?rounds:int ->
  Graphdb.Graph.t ->
  example list ->
  Words.hypothesis option
(** [max_len] (default 6) bounds harvested paths; [rounds] (default 8)
    bounds refinement.  The result selects every positive pair and, when
    refinement converged, no negative pair. *)

val selects : Words.hypothesis -> Graphdb.Graph.t -> int * int -> bool
