type position = { line : int; column : int }

type t =
  | Parse of { source : string; message : string; position : position option }
  | Budget_exhausted of { engine : string; spent : Budget.stats }
  | Invalid_input of { what : string; message : string }
  | Corrupt_journal of { path : string; offset : int; message : string }
  | Journal_locked of { path : string; pid : int }
  | Over_quota of { tenant : string; what : string; limit : int }
  | Storage of { op : string; path : string; message : string; full : bool }

let position_of_offset input offset =
  let offset = min (max offset 0) (String.length input) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if input.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; column = offset - !bol + 1 }

let parse_error ~source ?position message = Parse { source; message; position }

let at_offset ~source ~input ~offset message =
  Parse { source; message; position = Some (position_of_offset input offset) }

let budget_exhausted ~engine spent = Budget_exhausted { engine; spent }
let invalid_input ~what message = Invalid_input { what; message }
let corrupt_journal ~path ~offset message = Corrupt_journal { path; offset; message }
let journal_locked ~path ~pid = Journal_locked { path; pid }
let over_quota ~tenant ~what ~limit = Over_quota { tenant; what; limit }

let storage ~op ~path ?(full = false) message = Storage { op; path; message; full }

let storage_of_unix ~op ~path = function
  | Unix.ENOSPC -> Storage { op; path; message = "no space left on device"; full = true }
  | err -> Storage { op; path; message = Unix.error_message err; full = false }

let pp ppf = function
  | Parse { source; message; position } -> (
      match position with
      | Some { line; column } ->
          Format.fprintf ppf "%s parse error at line %d, column %d: %s" source
            line column message
      | None -> Format.fprintf ppf "%s parse error: %s" source message)
  | Budget_exhausted { engine; spent } ->
      Format.fprintf ppf "%s: budget exhausted after %d steps (%.3fs)" engine
        spent.Budget.fuel_spent spent.Budget.elapsed
  | Invalid_input { what; message } ->
      Format.fprintf ppf "invalid %s: %s" what message
  | Corrupt_journal { path; offset; message } ->
      Format.fprintf ppf "corrupt journal %s at byte %d: %s" path offset message
  | Journal_locked { path; pid } ->
      Format.fprintf ppf
        "journal %s is locked by live process %d (another session has it open)"
        path pid
  | Over_quota { tenant; what; limit } ->
      Format.fprintf ppf "tenant %s is over its %s quota (limit %d)" tenant
        what limit
  | Storage { op; path; message; full } ->
      Format.fprintf ppf "storage failure during %s on %s: %s%s" op path
        message
        (if full then " (disk full)" else "")

let to_string e = Format.asprintf "%a" pp e

let exit_ok = 0
let exit_degraded = 2
let exit_budget = 3
let exit_bad_input = 64
let exit_io = 74 (* EX_IOERR: the environment failed, not the input *)

let exit_code = function
  | Parse _ | Invalid_input _ | Corrupt_journal _ | Journal_locked _ ->
      exit_bad_input
  | Budget_exhausted _ | Over_quota _ -> exit_budget
  | Storage _ -> exit_io
