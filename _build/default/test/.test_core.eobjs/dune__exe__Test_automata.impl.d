test/test_automata.ml: Alcotest Automata Core Dfa List Nfa QCheck QCheck_alcotest Regex Rpni String
