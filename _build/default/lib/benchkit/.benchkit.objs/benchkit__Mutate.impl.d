lib/benchkit/mutate.ml: Core List Printf Tree Uschema Xmltree
