lib/automata/dfa.mli: Format Nfa Regex
