lib/twiglearn/approximate.ml: Core List Positive Twig Xmltree
