(** Telemetry: spans, metrics, and structured logs for every learner engine.

    The paper's quantitative claims are claims about {e counts and costs} —
    convergence "generally from two examples" (§2) is a question count, the
    PTIME containment of DMS (§2) is a bound on containment-check work.  This
    module gives the engines first-class accounting for both: a span tracer
    for where the time goes, a metrics registry for how much work was done,
    and a leveled key=value logger correlated with the active span.

    {2 The zero-cost disabled path}

    Telemetry is {b off by default}.  Every instrumentation entry point
    ({!with_span}, {!Metrics.incr}, {!Metrics.observe}, the {!Log} functions
    below their level) starts with a single mutable-bool load and branch, so
    an un-instrumented-feeling fast path survives in the innermost
    enumeration loops.  [bench pr3] measures the residue (<2% on the E1 twig
    workload).

    {2 Naming scheme}

    Metrics are named [learnq.<engine>.<name>] — e.g.
    [learnq.interact.questions], [learnq.journal.fsync_s],
    [learnq.twig.contain_calls].  Spans use [<engine>.<what>] ("interact.ask",
    "twiglearn.lgg", "twig.contain.minimize").

    {2 Domains}

    The registry and span stack are single-domain mutable state.  Code
    instrumented with spans or counters may nevertheless run inside
    {!Pool} worker domains: every entry point no-ops off the main domain
    (the check follows the enabled-flag load, so the disabled fast path
    is unchanged).  Work done by worker domains is therefore {e not}
    counted — the parallel determined-scan reports its aggregates from the
    main domain instead (see DESIGN §8). *)

(** {1 Master switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every metric, drop all recorded spans and the run context, close any
    open span stack.  Registered metric handles stay valid.  For tests and
    benchmarks. *)

(** {1 Run context}

    Key-value pairs stamped into the header of every trace and metrics
    export, so a run is reproducible from its telemetry file alone: the PRNG
    seed, the budget settings, and (added automatically at export time) the
    source revision from [git describe]. *)

val set_context : (string * string) list -> unit
(** Merge pairs into the run context (later values win per key). *)

val context : unit -> (string * string) list
(** Current context including the [git] revision probe. *)

(** {1 Spans}

    Nested, monotonic-clock-timed intervals.  A span is opened and closed by
    {!with_span}; nesting follows the call stack.  Completed spans are kept
    (up to a cap) for the Chrome exporter, and aggregated by name (count,
    total, self time) regardless of the cap. *)

val with_span :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span.  The span closes even when
    [f] raises (e.g. {!Budget.Out_of_budget} escaping an enumeration).
    Identity when telemetry is disabled. *)

val current_span_id : unit -> int option
(** Innermost open span, for log correlation. *)

val span_count : unit -> int
(** Completed spans currently recorded (post-cap). *)

val dropped_spans : unit -> int
(** Spans timed but not recorded because the in-memory cap was reached; they
    still count in the by-name aggregates. *)

val span_aggregates : unit -> (string * int * float * float) list
(** Per-name rollup [(name, count, total_s, self_s)], sorted by total time
    descending.  Self time excludes child spans — the per-engine "where the
    time goes" breakdown. *)

val trace_json : unit -> string
(** Chrome [trace_event] export (JSON object format: ["traceEvents"] complete
    events plus an ["otherData"] header with the run context).  Loadable in
    [chrome://tracing] and Perfetto. *)

val pp_span_tree : Format.formatter -> unit -> unit
(** Compact text dump of the span forest with durations. *)

(** {1 Metrics} *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Register (or look up) a named monotonic counter.  Registration at
      module-initialisation time keeps the hot path free of table lookups. *)

  val incr : ?by:int -> counter -> unit
  (** No-op while telemetry is disabled. *)

  val counter_value : counter -> int

  val gauge : string -> gauge
  val set : gauge -> float -> unit
  val gauge_value : gauge -> float

  val histogram : string -> histogram
  (** Log-scale histogram (2 buckets per octave from 1e-9 up): made for
      latencies spanning nanoseconds to minutes. *)

  val observe : histogram -> float -> unit
  (** Record a sample.  No-op while telemetry is disabled. *)

  val hist_count : histogram -> int
  val hist_sum : histogram -> float

  val percentile : histogram -> float -> float
  (** [percentile h p] with [p] in [0,1]: 0. on an empty histogram, the exact
      minimum at [p <= 0.], the exact maximum at [p >= 1.]; otherwise the
      geometric midpoint of the bucket holding the nearest-rank sample,
      clamped to the observed [min, max] (so single-sample and all-equal
      series are exact). *)

  val metrics_json : unit -> string
  (** All registered metrics plus the run-context header and the span
      rollup, as a JSON object. *)

  val metrics_prometheus : unit -> string
  (** Prometheus text exposition: counters and gauges as-is, histograms as
      summaries (count, sum, p50/p90/p99 quantiles), the run context as a
      [learnq_run_info] gauge with labels. *)
end

(** {1 Structured logging}

    Leveled key=value logging to stderr (or a caller-supplied formatter),
    correlated with the active span and — when the serving path installed
    one on this thread — the active {!Obs.Trace} id ([trace=] key).
    Distinct from the master switch: logs work whether or not spans/metrics
    are enabled, gated only by level. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> level option
val level_to_string : level -> string

module Log : sig
  val set_level : level option -> unit
  (** [None] silences the logger entirely.  Default: [Some Warn]. *)

  val level : unit -> level option

  val set_formatter : Format.formatter -> unit
  (** Redirect output (default: stderr). *)

  val logs : level -> bool
  (** Would a message at this level be emitted? *)

  val debug : ?kv:(string * string) list -> string -> unit
  val info : ?kv:(string * string) list -> string -> unit
  val warn : ?kv:(string * string) list -> string -> unit
  val error : ?kv:(string * string) list -> string -> unit
end

(** {1 End-of-run summary} *)

val pp_summary : Format.formatter -> unit -> unit
(** Stats table: non-zero counters and gauges, histogram quantiles, and the
    span time rollup. *)

(** {1 CLI wiring} *)

val configure :
  ?trace:string ->
  ?metrics:string ->
  ?log_level:level option ->
  ?summary:bool ->
  unit ->
  unit
(** One-call setup for the [learnq] binary: enables telemetry when any of
    [trace]/[metrics]/[summary] is requested, sets the log level, and
    registers an [at_exit] hook that writes the trace JSON to [trace], the
    metrics JSON to [metrics] (plus [<metrics>.prom] in Prometheus text
    exposition), and prints the summary table to stderr — also on early
    [exit], e.g. degraded outcomes or an injected crash. *)
