(** Nondeterministic finite automata with ε-transitions over string symbols,
    built from regular expressions by Thompson's construction. *)

type t = {
  state_count : int;
  start : int;
  final : int;  (** Thompson automata have a single final state *)
  trans : (int * string option * int) list;  (** [None] labels ε-moves *)
}

val of_regex : Regex.t -> t
val alphabet : t -> string list
val eps_closure : t -> int list -> int list
(** Sorted, deduplicated. *)

val step : t -> int list -> string -> int list
(** One symbol move from an ε-closed state set (result ε-closed). *)

val accepts : t -> string list -> bool
