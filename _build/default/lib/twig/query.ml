type axis = Child | Descendant
type test = Label of string | Wildcard
type filter = { ftest : test; fsubs : (axis * filter) list }
type step = { axis : axis; test : test; filters : (axis * filter) list }
type t = step list

let path pairs =
  if pairs = [] then invalid_arg "Query.path: empty query";
  List.map (fun (axis, l) -> { axis; test = Label l; filters = [] }) pairs

let rec filter_size f =
  1 + List.fold_left (fun acc (_, g) -> acc + filter_size g) 0 f.fsubs

let step_size s =
  1 + List.fold_left (fun acc (_, f) -> acc + filter_size f) 0 s.filters

let size q = List.fold_left (fun acc s -> acc + step_size s) 0 q
let depth q = List.length q
let is_path q = List.for_all (fun s -> s.filters = []) q
let strip_filters q = List.map (fun s -> { s with filters = [] }) q

(* ------------------------------------------------------------------ *)
(* Anchoredness                                                        *)
(* ------------------------------------------------------------------ *)

let rec filter_anchored incoming f =
  (match f.ftest with
  | Wildcard ->
      incoming = Child && List.for_all (fun (a, _) -> a = Child) f.fsubs
  | Label _ -> true)
  && List.for_all (fun (a, g) -> filter_anchored a g) f.fsubs

let is_anchored q =
  let rec spine = function
    | [] -> true
    | [ last ] ->
        (* Output node: must not be a wildcard at all (the learnable class
           selects nodes by label). *)
        last.test <> Wildcard
        && List.for_all (fun (a, f) -> filter_anchored a f) last.filters
    | s :: (next :: _ as rest) ->
        (match s.test with
        | Wildcard -> s.axis = Child && next.axis = Child
        | Label _ -> true)
        && List.for_all (fun (a, f) -> filter_anchored a f) s.filters
        && spine rest
  in
  spine q

(* Dropping a wildcard filter node promotes its subtrees to the parent with
   descendant axes; this only generalizes the filter. *)
let rec anchor_filter_edges (a, f) =
  let subs = List.concat_map anchor_filter_edges f.fsubs in
  let offending =
    f.ftest = Wildcard
    && (a = Descendant || List.exists (fun (sa, _) -> sa = Descendant) subs)
  in
  if offending then List.map (fun (_, g) -> (Descendant, g)) subs
  else [ (a, { f with fsubs = subs }) ]

let anchor q =
  let anchor_step s =
    { s with filters = List.concat_map anchor_filter_edges s.filters }
  in
  (* Walk the spine front-to-back; drop offending wildcards, fusing their
     incident edges into a descendant edge. *)
  let rec spine = function
    | [] -> []
    | [ last ] -> [ anchor_step last ]
    | s :: (next :: _ as rest) ->
        let offending =
          s.test = Wildcard && (s.axis = Descendant || next.axis = Descendant)
        in
        if offending then
          match spine rest with
          | n :: tail -> { n with axis = Descendant } :: tail
          | [] -> assert false
        else anchor_step s :: spine rest
  in
  spine q

(* ------------------------------------------------------------------ *)
(* Characteristic queries of examples                                  *)
(* ------------------------------------------------------------------ *)

(* Text nodes are data values, not structure: twig queries never test them,
   so characteristic queries must not either. *)
let structural_children (t : Xmltree.Tree.t) =
  List.filter (fun c -> not (Xmltree.Tree.is_text c)) t.children

let rec filter_of_tree (t : Xmltree.Tree.t) =
  {
    ftest = Label t.label;
    fsubs = List.map (fun c -> (Child, filter_of_tree c)) (structural_children t);
  }

let of_example doc target =
  let open Xmltree in
  let rec build (n : Tree.t) = function
    | [] ->
        [
          {
            axis = Child;
            test = Label n.label;
            filters =
              List.map
                (fun c -> (Child, filter_of_tree c))
                (structural_children n);
          };
        ]
    | i :: rest ->
        let spine_child =
          match List.nth_opt n.children i with
          | Some c -> c
          | None -> invalid_arg "Query.of_example: path not in document"
        in
        let sibling_filters =
          List.filteri (fun j _ -> j <> i) n.children
          |> List.filter (fun (c : Xmltree.Tree.t) ->
                 not (Xmltree.Tree.is_text c))
          |> List.map (fun c -> (Child, filter_of_tree c))
        in
        { axis = Child; test = Label n.label; filters = sibling_filters }
        :: build spine_child rest
  in
  build doc target

(* ------------------------------------------------------------------ *)
(* Comparison and printing                                             *)
(* ------------------------------------------------------------------ *)

let tests_equal t1 t2 =
  match (t1, t2) with
  | Label a, Label b -> String.equal a b
  | Wildcard, Wildcard -> true
  | Label _, Wildcard | Wildcard, Label _ -> false

let compare_test t1 t2 =
  match (t1, t2) with
  | Label a, Label b -> String.compare a b
  | Wildcard, Wildcard -> 0
  | Wildcard, Label _ -> -1
  | Label _, Wildcard -> 1

let rec compare_filter f1 f2 =
  let c = compare_test f1.ftest f2.ftest in
  if c <> 0 then c
  else
    List.compare
      (fun (a1, g1) (a2, g2) ->
        let c = Stdlib.compare a1 a2 in
        if c <> 0 then c else compare_filter g1 g2)
      (sort_edges f1.fsubs) (sort_edges f2.fsubs)

and sort_edges edges =
  List.sort
    (fun (a1, g1) (a2, g2) ->
      let c = Stdlib.compare a1 a2 in
      if c <> 0 then c else compare_filter g1 g2)
    (List.map (fun (a, g) -> (a, sort_filter g)) edges)

and sort_filter f = { f with fsubs = sort_edges f.fsubs }

let equal q1 q2 =
  List.length q1 = List.length q2
  && List.for_all2
       (fun s1 s2 ->
         s1.axis = s2.axis
         && tests_equal s1.test s2.test
         && List.compare
              (fun (a1, g1) (a2, g2) ->
                let c = Stdlib.compare a1 a2 in
                if c <> 0 then c else compare_filter g1 g2)
              (sort_edges s1.filters) (sort_edges s2.filters)
            = 0)
       q1 q2

let labels q =
  let module S = Set.Make (String) in
  let add_test acc = function Label l -> S.add l acc | Wildcard -> acc in
  let rec add_filter acc f =
    List.fold_left
      (fun acc (_, g) -> add_filter acc g)
      (add_test acc f.ftest) f.fsubs
  in
  let acc =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc (_, f) -> add_filter acc f)
          (add_test acc s.test) s.filters)
      S.empty q
  in
  S.elements acc

let pp_test ppf = function
  | Label l -> Format.pp_print_string ppf l
  | Wildcard -> Format.pp_print_char ppf '*'

let axis_sep = function Child -> "/" | Descendant -> "//"

(* Filters print in XPath relative syntax: a single-child chain prints as a
   path ([b/c], [b//c]); branching prints nested predicates ([b[c][d]]). *)
let rec pp_filter ppf f =
  pp_test ppf f.ftest;
  match f.fsubs with
  | [] -> ()
  | [ (a, g) ] ->
      Format.pp_print_string ppf (axis_sep a);
      pp_filter ppf g
  | subs ->
      (* All but the last sub print as predicates, the last as a path
         continuation: b[c][d]/e.  Predicates and continuations denote the
         same conditions, so this is only a display choice — and it makes
         printing invert parsing. *)
      let rec go = function
        | [] -> ()
        | [ (a, g) ] ->
            Format.pp_print_string ppf (axis_sep a);
            pp_filter ppf g
        | (a, g) :: rest ->
            Format.fprintf ppf "[%s%a]"
              (match a with Child -> "" | Descendant -> ".//")
              pp_filter g;
            go rest
      in
      go subs

let pp_filter_edge ppf (a, f) =
  Format.fprintf ppf "[%s%a]"
    (match a with Child -> "" | Descendant -> ".//")
    pp_filter f

let pp ppf q =
  List.iter
    (fun s ->
      Format.pp_print_string ppf (axis_sep s.axis);
      pp_test ppf s.test;
      List.iter (pp_filter_edge ppf) (sort_edges s.filters))
    q

let to_string q = Format.asprintf "%a" pp q
