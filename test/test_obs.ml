(* Tests for the server observability layer (Core.Obs): trace ids, the
   flight recorder ring (wraparound, concurrent writers, dump on
   quarantine), and labeled sliding-window metrics (rotation edges, empty
   windows, cardinality cap). *)

module Obs = Core.Obs
module Json = Server.Json
module Engines = Server.Engines
module Stepper = Server.Stepper
module Registry = Server.Registry
module Tenant = Server.Tenant

let with_temp_dir f =
  let path = Filename.temp_file "learnq_obs" ".d" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun e ->
             try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
           (Sys.readdir path)
       with Sys_error _ -> ());
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_mint_and_valid () =
  let a = Obs.Trace.mint () and b = Obs.Trace.mint () in
  Alcotest.(check bool) "minted ids are distinct" true (a <> b);
  Alcotest.(check bool) "minted ids are valid" true
    (Obs.Trace.valid a && Obs.Trace.valid b);
  Alcotest.(check bool) "empty rejected" false (Obs.Trace.valid "");
  Alcotest.(check bool) "spaces rejected" false (Obs.Trace.valid "a b");
  Alcotest.(check bool) "header-injection rejected" false
    (Obs.Trace.valid "x\r\nSet-Cookie: n");
  Alcotest.(check bool) "over-long rejected" false
    (Obs.Trace.valid (String.make 65 'a'));
  Alcotest.(check bool) "64 chars accepted" true
    (Obs.Trace.valid (String.make 64 'a'))

let test_trace_with_trace_restores () =
  Obs.Trace.set None;
  Alcotest.(check (option string)) "no ambient trace" None
    (Obs.Trace.current ());
  let inner =
    Obs.Trace.with_trace "outer" (fun () ->
        let o = Obs.Trace.current () in
        let i =
          Obs.Trace.with_trace "inner" (fun () -> Obs.Trace.current ())
        in
        (o, i, Obs.Trace.current ()))
  in
  Alcotest.(check (option string)) "outer installed" (Some "outer")
    (let o, _, _ = inner in
     o);
  Alcotest.(check (option string)) "inner shadows" (Some "inner")
    (let _, i, _ = inner in
     i);
  Alcotest.(check (option string)) "outer restored after inner"
    (Some "outer")
    (let _, _, r = inner in
     r);
  Alcotest.(check (option string)) "cleared after with_trace" None
    (Obs.Trace.current ());
  (* Restoration survives a raise. *)
  (try
     Obs.Trace.with_trace "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (option string)) "cleared after raise" None
    (Obs.Trace.current ())

let test_trace_per_thread () =
  Obs.Trace.set None;
  let seen = ref None in
  Obs.Trace.with_trace "main-trace" (fun () ->
      let t =
        Thread.create (fun () -> seen := Obs.Trace.current ()) ()
      in
      Thread.join t;
      Alcotest.(check (option string)) "other thread sees no trace" None !seen;
      Alcotest.(check (option string)) "main thread keeps its trace"
        (Some "main-trace") (Obs.Trace.current ()))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let ev_names evs = List.map (fun e -> e.Obs.Recorder.ev_name) evs

let test_recorder_wraparound () =
  Obs.reset ();
  (* 32 total over 8 slots = 4 per slot; a single-domain writer lands
     every event in its own slot, so only the last 4 survive. *)
  Obs.Recorder.set_capacity 32;
  for i = 0 to 9 do
    Obs.Recorder.record (Printf.sprintf "ev%d" i)
  done;
  Alcotest.(check (list string)) "oldest overwritten, order kept"
    [ "ev6"; "ev7"; "ev8"; "ev9" ]
    (ev_names (Obs.Recorder.events ()));
  Obs.Recorder.set_capacity 4096;
  Obs.reset ()

let test_recorder_disabled_is_silent () =
  Obs.reset ();
  Obs.Recorder.set_recording false;
  Obs.Recorder.record "invisible";
  ignore (Obs.Recorder.with_span "quiet" (fun () -> 42));
  Alcotest.(check int) "nothing retained" 0
    (List.length (Obs.Recorder.events ()));
  Obs.reset ()

let test_recorder_span_pairing_and_trace_filter () =
  Obs.reset ();
  Obs.Trace.with_trace "req-1" (fun () ->
      Obs.Recorder.with_span ~detail:"outer work" "outer" (fun () ->
          Obs.Recorder.record ~detail:"d" "tick"));
  Obs.Trace.with_trace "req-2" (fun () -> Obs.Recorder.record "other");
  Obs.Recorder.record "untraced";
  let req1 = Obs.Recorder.trace_events "req-1" in
  Alcotest.(check (list string)) "span tree of one request"
    [ "outer"; "tick"; "outer" ] (ev_names req1);
  (match List.map (fun e -> e.Obs.Recorder.ev_phase) req1 with
  | [ Obs.Recorder.Begin; Obs.Recorder.Instant; Obs.Recorder.End ] -> ()
  | _ -> Alcotest.fail "expected Begin/Instant/End phases");
  Alcotest.(check (list string)) "other request filtered separately"
    [ "other" ]
    (ev_names (Obs.Recorder.trace_events "req-2"));
  Alcotest.(check int) "all events retained" 5
    (List.length (Obs.Recorder.events ()));
  (* The span closes even when the body raises. *)
  (try Obs.Recorder.with_span "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  let doomed =
    List.filter
      (fun e -> e.Obs.Recorder.ev_name = "doomed")
      (Obs.Recorder.events ())
  in
  (match List.map (fun e -> e.Obs.Recorder.ev_phase) doomed with
  | [ Obs.Recorder.Begin; Obs.Recorder.End ] -> ()
  | _ -> Alcotest.fail "span not closed on raise");
  Obs.reset ()

let test_recorder_concurrent_domains () =
  Obs.reset ();
  Obs.Recorder.set_capacity 1024;
  let per_domain = 500 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Obs.Recorder.record ~detail:(string_of_int i)
                (Printf.sprintf "dom%d" d)
            done))
  in
  List.iter Domain.join domains;
  let evs = Obs.Recorder.events () in
  Alcotest.(check bool) "ring retained something" true (List.length evs > 0);
  Alcotest.(check bool) "ring never exceeds capacity" true
    (List.length evs <= 1024);
  List.iter
    (fun e ->
      if not (String.length e.Obs.Recorder.ev_name > 3) then
        Alcotest.fail "torn event name")
    evs;
  (* The dump is valid JSON even with events from many domains. *)
  (match Json.parse (Obs.Recorder.dump_json ()) with
  | Ok (Json.Obj kvs) ->
      (match List.assoc_opt "traceEvents" kvs with
      | Some (Json.Arr l) ->
          Alcotest.(check int) "dump covers every retained event"
            (List.length evs) (List.length l)
      | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "dump is not an object"
  | Error e -> Alcotest.failf "dump does not parse: %s" e);
  Obs.Recorder.set_capacity 4096;
  Obs.reset ()

(* A corrupt journal's quarantine drops a flight-recorder dump next to the
   corpse — the post-mortem artifact the ISSUE asks for. *)
let test_recorder_dump_on_quarantine () =
  Obs.reset ();
  let spec =
    { Engines.default_spec with Engines.engine = "join"; seed = 5; rows = 5 }
  in
  let truth =
    match Engines.oracle spec ~goal:"planted" with
    | Ok t -> t
    | Error e -> Alcotest.failf "oracle: %s" (Core.Error.to_string e)
  in
  with_temp_dir (fun dir ->
      let cfg =
        {
          Registry.dir;
          sync = Core.Journal.Always;
          tenants = Tenant.make [];
          step_fuel = None;
          step_timeout = None;
          vfs = Core.Vfs.real;
          checkpoint_every = 0;
          max_live = 0;
          idle_evict_after = 0.;
        }
      in
      let reg = Registry.create cfg in
      (match Registry.create_session reg ~tenant:"t" ~id:"s" spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "create: %s" (Core.Error.to_string e));
      let st = Option.get (Registry.find reg ~tenant:"t" ~id:"s") in
      let rec answer n =
        if n > 0 then
          let v = st.Stepper.view () in
          match v.Stepper.question with
          | Some key when not v.Stepper.done_ ->
              (match
                 st.Stepper.answer ~qid:v.Stepper.qid
                   (Core.Flaky.Label (truth key))
               with
              | Ok _ -> answer (n - 1)
              | Error e ->
                  Alcotest.failf "answer: %s" (Core.Error.to_string e))
          | _ -> ()
      in
      answer 2;
      Registry.drain reg;
      (* Flip a byte of the journal tail; recovery must quarantine it and
         leave a flight dump beside the quarantined bytes. *)
      let jpath =
        match
          Array.to_list (Sys.readdir dir)
          |> List.filter (fun e -> Filename.check_suffix e ".journal")
        with
        | [ name ] -> Filename.concat dir name
        | l -> Alcotest.failf "expected one journal, got %d" (List.length l)
      in
      let ic = open_in_bin jpath in
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string bytes in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      let oc = open_out_bin jpath in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_bytes oc b);
      let reg2 = Registry.create cfg in
      let pool = Core.Pool.create 1 in
      let _recovered, _errors =
        Fun.protect
          ~finally:(fun () -> Core.Pool.shutdown pool)
          (fun () -> Registry.recover_all reg2 ~pool)
      in
      Registry.drain reg2;
      Alcotest.(check int) "quarantined" 1
        (Registry.stats reg2).Registry.quarantined;
      let dump = jpath ^ ".quarantine.flight.json" in
      Alcotest.(check bool) "flight dump written" true (Sys.file_exists dump);
      let ic = open_in_bin dump in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Json.parse raw with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "dump is not a JSON object"
      | Error e -> Alcotest.failf "dump does not parse: %s" e);
      (* The dump's event stream names the quarantine itself. *)
      Alcotest.(check bool) "dump mentions the quarantine" true
        (let evs = Obs.Recorder.events () in
         List.exists
           (fun e -> e.Obs.Recorder.ev_name = "registry.quarantine")
           evs);
      Sys.remove dump);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Labeled metrics: sliding windows                                    *)
(* ------------------------------------------------------------------ *)

let test_labeled_counters () =
  Obs.reset ();
  Obs.Labeled.incr "reqs" [ ("route", "/a"); ("outcome", "2xx") ];
  Obs.Labeled.incr "reqs" [ ("outcome", "2xx"); ("route", "/a") ];
  Obs.Labeled.incr ~by:3 "reqs" [ ("route", "/a"); ("outcome", "5xx") ];
  Alcotest.(check int) "label order is canonical" 2
    (Obs.Labeled.counter_value "reqs" [ ("outcome", "2xx"); ("route", "/a") ]);
  Alcotest.(check int) "by" 3
    (Obs.Labeled.counter_value "reqs" [ ("route", "/a"); ("outcome", "5xx") ]);
  Alcotest.(check int) "unknown series reads 0" 0
    (Obs.Labeled.counter_value "reqs" [ ("route", "/b") ]);
  Alcotest.(check int) "two series" 2 (Obs.Labeled.series_count "reqs");
  Obs.reset ()

let lbl = [ ("tenant", "t") ]

let test_window_rotation_edges () =
  Obs.reset ();
  let t = ref 0. in
  Obs.Labeled.set_clock (Some (fun () -> !t));
  (* 6 sub-windows x 10 s: a sample stays visible for the rest of its own
     sub-window plus five more — 60 s from the epoch boundary. *)
  for _ = 1 to 5 do
    Obs.Labeled.observe ~span:10. "lat" lbl 0.050
  done;
  Alcotest.(check int) "live immediately" 5 (Obs.Labeled.window_count "lat" lbl);
  t := 59.9;
  Alcotest.(check int) "still live at the window edge" 5
    (Obs.Labeled.window_count "lat" lbl);
  t := 60.;
  Alcotest.(check int) "gone one tick past the window" 0
    (Obs.Labeled.window_count "lat" lbl);
  (* Partial expiry: samples rotate out sub-window by sub-window. *)
  t := 100.;
  Obs.Labeled.observe ~span:10. "lat" lbl 0.010;
  t := 110.;
  Obs.Labeled.observe ~span:10. "lat" lbl 0.020;
  Alcotest.(check int) "both sub-windows live" 2
    (Obs.Labeled.window_count "lat" lbl);
  t := 160.;
  Alcotest.(check int) "older sub-window expired" 1
    (Obs.Labeled.window_count "lat" lbl);
  t := 170.;
  Alcotest.(check int) "then the newer one" 0
    (Obs.Labeled.window_count "lat" lbl);
  (* Lazy rotation: writing at a much later epoch reuses (and zeroes) the
     slot of a long-dead sub-window rather than resurrecting its data. *)
  t := 1000.;
  Obs.Labeled.observe ~span:10. "lat" lbl 0.300;
  Alcotest.(check int) "only the fresh sample" 1
    (Obs.Labeled.window_count "lat" lbl);
  Obs.reset ()

let test_window_percentiles () =
  Obs.reset ();
  let t = ref 0. in
  Obs.Labeled.set_clock (Some (fun () -> !t));
  Alcotest.(check (float 0.)) "empty window reads p99 = 0" 0.
    (Obs.Labeled.window_percentile "lat2" lbl 0.99);
  for i = 1 to 100 do
    Obs.Labeled.observe "lat2" lbl (0.001 *. float_of_int i)
  done;
  let p50 = Obs.Labeled.window_percentile "lat2" lbl 0.5 in
  let p99 = Obs.Labeled.window_percentile "lat2" lbl 0.99 in
  Alcotest.(check bool) "p50 in the middle of the samples" true
    (p50 > 0.02 && p50 < 0.09);
  Alcotest.(check bool) "p99 near the top, clamped to max" true
    (p99 > p50 && p99 <= 0.1);
  (match Obs.Labeled.window_stats "lat2" lbl with
  | Some (count, sum, _, _, _) ->
      Alcotest.(check int) "count" 100 count;
      Alcotest.(check bool) "sum" true (Float.abs (sum -. 5.05) < 1e-9)
  | None -> Alcotest.fail "known series must report stats");
  Alcotest.(check bool) "unknown series reports None" true
    (Obs.Labeled.window_stats "lat2" [ ("tenant", "ghost") ] = None);
  (* After the window slides away, percentiles return to 0. *)
  t := 3600.;
  Alcotest.(check (float 0.)) "expired window reads 0" 0.
    (Obs.Labeled.window_percentile "lat2" lbl 0.99);
  Obs.reset ()

let test_label_cardinality_cap () =
  Obs.reset ();
  Obs.Labeled.set_max_series 4;
  for i = 1 to 10 do
    Obs.Labeled.incr "capped" [ ("tenant", Printf.sprintf "t%d" i) ]
  done;
  Alcotest.(check int) "capped at max + overflow" 5
    (Obs.Labeled.series_count "capped");
  Alcotest.(check int) "overflow absorbs the excess" 6
    (Obs.Labeled.counter_value "capped" [ ("overflow", "true") ]);
  Alcotest.(check int) "pre-cap series still addressable" 1
    (Obs.Labeled.counter_value "capped" [ ("tenant", "t1") ]);
  (* Existing series keep counting after the cap. *)
  Obs.Labeled.incr "capped" [ ("tenant", "t1") ];
  Alcotest.(check int) "pre-cap series not frozen" 2
    (Obs.Labeled.counter_value "capped" [ ("tenant", "t1") ]);
  Obs.reset ()

let test_prometheus_exposition () =
  Obs.reset ();
  Obs.Labeled.incr "learnq_requests_total"
    [ ("route", "/v1/sessions"); ("outcome", "2xx"); ("tenant", "t") ];
  Obs.Labeled.observe "learnq_request_seconds" [ ("tenant", "t") ] 0.025;
  let text = Obs.Labeled.prometheus () in
  let has needle =
    let nn = String.length needle and hn = String.length text in
    let rec go i =
      i + nn <= hn && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "counter series with labels" true
    (has "learnq_requests_total{");
  Alcotest.(check bool) "counter value" true (has "} 1");
  Alcotest.(check bool) "summary type" true
    (has "# TYPE learnq_request_seconds summary");
  Alcotest.(check bool) "quantile label" true (has "quantile=\"0.99\"");
  Alcotest.(check bool) "window count" true
    (has "learnq_request_seconds_count{tenant=\"t\"} 1");
  Obs.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "mint and validate" `Quick
            test_trace_mint_and_valid;
          Alcotest.test_case "with_trace restores" `Quick
            test_trace_with_trace_restores;
          Alcotest.test_case "traces are per-thread" `Quick
            test_trace_per_thread;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "wraparound keeps the newest" `Quick
            test_recorder_wraparound;
          Alcotest.test_case "disabled recorder is silent" `Quick
            test_recorder_disabled_is_silent;
          Alcotest.test_case "span pairing and trace filter" `Quick
            test_recorder_span_pairing_and_trace_filter;
          Alcotest.test_case "concurrent writers across domains" `Quick
            test_recorder_concurrent_domains;
          Alcotest.test_case "dump on quarantine" `Quick
            test_recorder_dump_on_quarantine;
        ] );
      ( "labeled",
        [
          Alcotest.test_case "counters and label order" `Quick
            test_labeled_counters;
          Alcotest.test_case "window rotation edges" `Quick
            test_window_rotation_edges;
          Alcotest.test_case "window percentiles" `Quick
            test_window_percentiles;
          Alcotest.test_case "label cardinality cap" `Quick
            test_label_cardinality_cap;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
        ] );
    ]
