bench/main.mli:
