type level = Exact | Anchored | Approximate

type outcome = {
  query : Twig.Query.t option;
  level : level;
  degraded : bool;
  dropped : int;
  training_errors : int;
  spent : Core.Budget.stats;
}

let learn ?budget ?filter_depth ?max_filters_per_node ?(max_size = 4) examples =
  let budget =
    match budget with Some b -> b | None -> Core.Budget.unlimited ()
  in
  let finish ?(level = Exact) ?(dropped = 0) ?(training_errors = 0) query =
    {
      query;
      level;
      degraded = level <> Exact;
      dropped;
      training_errors;
      spent = Core.Budget.stats budget;
    }
  in
  let descend () =
    match Consistency.anchored examples with
    | Some q -> finish ~level:Anchored (Some q)
    | None -> (
        match Approximate.learn examples with
        | Some r ->
            finish ~level:Approximate
              ~dropped:(List.length r.dropped)
              ~training_errors:r.training_errors (Some r.query)
        | None -> finish ~level:Approximate None)
  in
  match
    Core.Budget.run budget (fun () ->
        Consistency.bounded ~budget ?filter_depth ?max_filters_per_node
          ~max_size examples)
  with
  | Core.Budget.Done (Some q) -> finish (Some q)
  (* The whole bounded space is inconsistent with the sample, or the budget
     ran out mid-search: descend the ladder either way. *)
  | Core.Budget.Done None | Core.Budget.Exhausted _ -> descend ()
