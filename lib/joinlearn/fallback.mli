(** Graceful degradation for join learning: exact version-space learning
    with a budget-triggered fallback to the agreement-maximizing
    {!Robust.learn} — the relational face of the paper's "some of the
    annotations might be ignored to be able to compute in polynomial time a
    candidate query" (Section 3).

    Exact join learning is itself polynomial, so here degradation triggers on
    inconsistent samples (the crowd answered wrong somewhere) as well as on
    budget exhaustion; either way the caller gets a predicate, a degradation
    flag, and the budget spend. *)

type outcome = {
  theta : Signature.mask;  (** the learned predicate *)
  degraded : bool;  (** the robust rung answered, not the exact one *)
  training_errors : int;  (** examples the predicate misclassifies *)
  ignored : int;  (** annotations the robust rung dropped *)
  spent : Core.Budget.stats;
}

val learn :
  ?budget:Core.Budget.t ->
  Signature.space ->
  Signature.mask Core.Example.t list ->
  outcome
(** Never raises [Core.Budget.Out_of_budget] and never hangs. *)
