lib/core/limit.mli:
