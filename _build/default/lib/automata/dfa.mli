(** Deterministic finite automata: subset construction, Moore minimization,
    boolean operations, language comparison and word enumeration.

    DFAs are complete over their own alphabet (a sink state is materialized
    when needed).  Language comparisons account for alphabet differences:
    a symbol unknown to one automaton sends it to a dead state. *)

type t = {
  alphabet : string array;  (** sorted, distinct *)
  size : int;
  start : int;
  final : bool array;
  next : int array array;  (** [next.(state).(symbol_index)] *)
}

val make :
  alphabet:string list ->
  size:int ->
  start:int ->
  finals:int list ->
  trans:(int * string * int) list ->
  t
(** Explicit construction; missing transitions go to a fresh sink.
    @raise Invalid_argument on out-of-range states or unknown symbols. *)

val of_nfa : Nfa.t -> t
val of_regex : Regex.t -> t
val accepts : t -> string list -> bool
val symbol_index : t -> string -> int option

val reachable_count : t -> int
val minimize : t -> t
(** Reachable-state restriction followed by Moore partition refinement;
    the result is the canonical minimal complete DFA. *)

val complement : t -> t
val intersect : t -> t -> t
(** Product over the union alphabet. *)

val union : t -> t -> t
(** Product over the union alphabet, accepting when either side does (a
    symbol unknown to one side sends that side to a dead state). *)

val difference : t -> t -> t
(** Words of the first language not in the second. *)

val is_empty : t -> bool
val equal_language : t -> t -> bool

val enumerate : t -> max_len:int -> string list list
(** Accepted words of length ≤ [max_len], shortest first, lexicographic
    within a length. *)

val shortest_accepted : t -> string list option
val states_count : t -> int
val pp : Format.formatter -> t -> unit

val to_regex : t -> Regex.t
(** State elimination (GNFA); sizes can blow up — used for display of small
    learned automata. *)
