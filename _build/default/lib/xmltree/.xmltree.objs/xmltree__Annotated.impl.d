lib/xmltree/annotated.ml: Core Format Int List Set Tree
