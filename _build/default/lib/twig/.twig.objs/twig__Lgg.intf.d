lib/twig/lgg.mli: Query
