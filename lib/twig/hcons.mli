(** Hash-consing of twig filter nodes.

    {!Lgg.prune_maximal} — the quadratic inner loop of every LGG merge —
    decides redundancy with {!Contain.filter_subsumed}, and the same filter
    nodes flow through it again and again: a session's running LGG keeps its
    kept edges physically alive across questions, and [minimize] revisits
    them per probe.  Interning gives each distinct filter shape one
    canonical representative with a dense integer id, so a containment
    result can be memoized under an [(axis, id, axis, id)] key instead of
    being re-derived by a fresh homomorphism search.

    Interning is {e per-domain} ([Domain.DLS]): pool workers each build
    their own tables, so no locks sit on the hot path and the structures
    stay single-domain.  Ids are only meaningful within one domain and one
    {!generation}.

    The table is bounded: when it holds more than {!set_max_nodes} nodes it
    is cleared wholesale ({!generation} ticks, invalidating dependent
    caches such as the containment memo).  Long multi-session processes
    therefore hold a bounded working set rather than every filter shape
    ever seen. *)

val filter : Query.filter -> Query.filter * int
(** [filter f] is the canonical representative of [f] (structurally equal
    to it) and its id.  O(1) when [f] is already canonical; O(|f|)
    otherwise. *)

val test : Query.test -> Query.test
(** Interned test: equal labels share one [Label] node. *)

val live_nodes : unit -> int
(** Distinct filter shapes interned by the current domain's table. *)

val generation : unit -> int
(** Bumped by every {!clear} (explicit or capacity-triggered).  Caches
    keyed by ids must be dropped when it changes. *)

val clear : unit -> unit
(** Drop the current domain's tables and bump {!generation}. *)

val set_max_nodes : int -> unit
(** Capacity (default 2^20 nodes) above which {!filter} clears the table
    before interning.  Clamped to [>= 1024]. *)
