examples/quickstart.mli:
