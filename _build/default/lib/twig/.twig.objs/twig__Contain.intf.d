lib/twig/contain.mli: Query Xmltree
