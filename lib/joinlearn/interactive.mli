(** Interactive join inference (paper, Section 3): the learner walks the
    lattice of candidate predicates by asking the user to label tuple pairs,
    pruning pairs whose label is already forced by the version space.

    The protocol stops when every pair in the pool is labeled or
    uninformative; the output is the most specific predicate consistent with
    the answers.  Strategies determine how few questions that takes —
    experiment E6 compares them (and prices them as crowdsourcing HITs). *)

type item = {
  left : Relational.Relation.tuple;
  right : Relational.Relation.tuple;
  mask : Signature.mask;
}

module Session :
  Core.Interact.SESSION with type query = Signature.mask and type item = item

module Loop : module type of Core.Interact.Make (Session)

val items_of :
  Signature.space -> Relational.Relation.t -> Relational.Relation.t ->
  item list
(** The full Cartesian pool with precomputed signatures. *)

val lattice_strategy : (Session.state, item) Core.Interact.strategy
(** Asks the pair agreeing with the current most-specific predicate on the
    largest strict subset — a binary-search descent of the signature
    lattice. *)

val split_strategy :
  ?sample:int -> unit -> (Session.state, item) Core.Interact.strategy
(** Greedy expected-elimination: simulates both answers for (a sample of)
    the open items and asks the one whose worst-case outcome determines the
    most other items.  [sample] (default 48) caps the candidates scored. *)

val encode_item :
  left:Relational.Relation.t -> right:Relational.Relation.t -> item -> string
(** Journal codec: ["i:j"] row indices into the two relations (which resume
    regenerates from the journaled seed).
    @raise Invalid_argument when the item's tuples are not in them. *)

val decode_item :
  left:Relational.Relation.t ->
  right:Relational.Relation.t ->
  string ->
  item option
(** Inverse of {!encode_item}, recomputing the signature mask; [None] on an
    out-of-range index — the journal belongs to different relations. *)

val encode_state : Session.state -> string
(** Checkpoint codec: the version space's bitmask bounds plus the space
    dimension (a guard against snapshots from a different instance). *)

val decode_state :
  left:Relational.Relation.t ->
  right:Relational.Relation.t ->
  string ->
  (Session.state, string) result
(** Inverse of {!encode_state}, regenerating the signature space from the
    relations; [Error] on a dimension mismatch or an out-of-range mask. *)

val run_with_goal :
  ?rng:Core.Prng.t ->
  ?strategy:(Session.state, item) Core.Interact.strategy ->
  ?budget:Core.Budget.t ->
  ?profile:Core.Flaky.profile ->
  ?retry:Core.Retry.policy ->
  left:Relational.Relation.t ->
  right:Relational.Relation.t ->
  goal:Relational.Algebra.predicate ->
  unit ->
  Loop.outcome
(** Simulates the user: a pair is positive iff it satisfies [goal].
    [budget] bounds the session (the outcome's [degraded] flag reports a
    trip); [profile] injects crowd-worker faults — noise, refusals,
    timeouts — via {!Core.Flaky}; [retry] re-asks refused/timed-out
    questions with backoff (see {!Core.Interact.Make.run_flaky}). *)
