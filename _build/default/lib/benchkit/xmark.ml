open Xmltree

let keywords =
  [ "vintage"; "rare"; "mint"; "boxed"; "signed"; "antique"; "limited" ]

let countries =
  [ "United States"; "Germany"; "France"; "Japan"; "Brazil"; "Kenya" ]

let cities = [ "Tampa"; "Lille"; "Kyoto"; "Nairobi"; "Recife"; "Bremen" ]

let names =
  [ "Aki"; "Bea"; "Chidi"; "Dana"; "Eli"; "Fatou"; "Goro"; "Hana" ]

let attr name v = Tree.node ("@" ^ name) [ Tree.text v ]

(* description ::= text | parlist — the disjunctive rule. *)
let gen_text rng =
  let kw_count = Core.Prng.int rng 3 in
  Tree.node "text"
    (List.init kw_count (fun _ ->
         Tree.node "keyword" [ Tree.text (Core.Prng.pick rng keywords) ])
    @ [ Tree.text "lorem ipsum" ])

let gen_description rng =
  if Core.Prng.bool rng then Tree.node "description" [ gen_text rng ]
  else
    let items = 1 + Core.Prng.int rng 2 in
    Tree.node "description"
      [
        Tree.node "parlist"
          (List.init items (fun _ ->
               Tree.node "listitem" [ gen_text rng ]));
      ]

let gen_item rng region i =
  let incategories = Core.Prng.int rng 3 in
  let mailbox = if Core.Prng.chance rng 0.3 then [ Tree.node "mailbox" [] ] else [] in
  Tree.node "item"
    ([
       attr "id" (Printf.sprintf "item_%s_%d" region i);
       Tree.node "location" [ Tree.text (Core.Prng.pick rng countries) ];
       Tree.node "quantity" [ Tree.text (string_of_int (1 + Core.Prng.int rng 5)) ];
       Tree.node "name" [ Tree.text (Core.Prng.pick rng names) ];
       Tree.node "payment" [ Tree.text "Creditcard" ];
       gen_description rng;
       Tree.node "shipping" [ Tree.text "Will ship internationally" ];
     ]
    @ List.init incategories (fun c ->
          Tree.node "incategory" [ attr "category" (Printf.sprintf "cat%d" c) ])
    @ mailbox)

let region_names =
  [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ]

let gen_regions rng ~items_per_region =
  Tree.node "regions"
    (List.map
       (fun region ->
         let count = max 1 (items_per_region + Core.Prng.int rng 2 - 1) in
         Tree.node region (List.init count (gen_item rng region)))
       region_names)

let gen_address rng =
  let zipcode =
    if Core.Prng.bool rng then
      [ Tree.node "zipcode" [ Tree.text (string_of_int (Core.Prng.int rng 99999)) ] ]
    else []
  in
  Tree.node "address"
    ([
       Tree.node "street" [ Tree.text "1 Main St" ];
       Tree.node "city" [ Tree.text (Core.Prng.pick rng cities) ];
       Tree.node "country" [ Tree.text (Core.Prng.pick rng countries) ];
     ]
    @ zipcode)

let gen_profile rng =
  let interests = Core.Prng.int rng 3 in
  let maybe p n = if Core.Prng.chance rng p then [ n ] else [] in
  Tree.node "profile"
    ([ attr "income" (string_of_int (20000 + Core.Prng.int rng 80000)) ]
    @ List.init interests (fun c ->
          Tree.node "interest" [ attr "category" (Printf.sprintf "cat%d" c) ])
    @ maybe 0.5 (Tree.node "education" [ Tree.text "Graduate School" ])
    @ maybe 0.5 (Tree.node "gender" [ Tree.text (if Core.Prng.bool rng then "male" else "female") ])
    @ [ Tree.node "business" [ Tree.text (if Core.Prng.bool rng then "Yes" else "No") ] ]
    @ maybe 0.6 (Tree.node "age" [ Tree.text (string_of_int (18 + Core.Prng.int rng 60)) ]))

let gen_person rng i =
  let maybe p n = if Core.Prng.chance rng p then [ n ] else [] in
  Tree.node "person"
    ([
       attr "id" (Printf.sprintf "person%d" i);
       Tree.node "name" [ Tree.text (Core.Prng.pick rng names) ];
       Tree.node "emailaddress" [ Tree.text (Printf.sprintf "mailto:p%d@example.org" i) ];
     ]
    @ maybe 0.5 (Tree.node "phone" [ Tree.text "+1 555 0100" ])
    @ maybe 0.7 (gen_address rng)
    @ maybe 0.3 (Tree.node "homepage" [ Tree.text (Printf.sprintf "http://example.org/~p%d" i) ])
    @ maybe 0.4 (Tree.node "creditcard" [ Tree.text "1234 5678" ])
    @ maybe 0.8 (gen_profile rng)
    @ maybe 0.3
        (Tree.node "watches"
           (List.init (Core.Prng.int rng 3) (fun w ->
                Tree.node "watch" [ attr "open_auction" (Printf.sprintf "oa%d" w) ]))))

let gen_people rng ~count =
  Tree.node "people" (List.init count (gen_person rng))

let gen_bidder rng =
  Tree.node "bidder"
    [
      Tree.node "date" [ Tree.text "07/05/2026" ];
      Tree.node "time" [ Tree.text "12:00:00" ];
      Tree.node "personref" [ attr "person" "person0" ];
      Tree.node "increase" [ Tree.text (string_of_int (1 + Core.Prng.int rng 50)) ];
    ]

let gen_open_auction rng i =
  let maybe p n = if Core.Prng.chance rng p then [ n ] else [] in
  let bidders = Core.Prng.int rng 4 in
  Tree.node "open_auction"
    ([
       attr "id" (Printf.sprintf "oa%d" i);
       Tree.node "initial" [ Tree.text (string_of_int (10 + Core.Prng.int rng 90)) ];
     ]
    @ maybe 0.5 (Tree.node "reserve" [ Tree.text (string_of_int (50 + Core.Prng.int rng 100)) ])
    @ List.init bidders (fun _ -> gen_bidder rng)
    @ [ Tree.node "current" [ Tree.text (string_of_int (20 + Core.Prng.int rng 200)) ] ]
    @ maybe 0.3 (Tree.node "privacy" [ Tree.text "Yes" ])
    @ [
        Tree.node "itemref" [ attr "item" "item_africa_0" ];
        Tree.node "seller" [ attr "person" "person0" ];
      ]
    @ maybe 0.6 (Tree.node "annotation" [ gen_description rng ])
    @ [
        Tree.node "quantity" [ Tree.text "1" ];
        Tree.node "type" [ Tree.text "Regular" ];
        Tree.node "interval"
          [
            Tree.node "start" [ Tree.text "07/01/2026" ];
            Tree.node "end" [ Tree.text "08/01/2026" ];
          ];
      ])

let gen_closed_auction rng _i =
  let maybe p n = if Core.Prng.chance rng p then [ n ] else [] in
  Tree.node "closed_auction"
    ([
       Tree.node "seller" [ attr "person" "person0" ];
       Tree.node "buyer" [ attr "person" "person1" ];
       Tree.node "itemref" [ attr "item" "item_asia_0" ];
       Tree.node "price" [ Tree.text (string_of_int (30 + Core.Prng.int rng 300)) ];
       Tree.node "date" [ Tree.text "06/30/2026" ];
       Tree.node "quantity" [ Tree.text "1" ];
       Tree.node "type" [ Tree.text "Regular" ];
     ]
    @ maybe 0.7 (Tree.node "annotation" [ gen_description rng ]))

let gen_category rng i =
  Tree.node "category"
    [
      attr "id" (Printf.sprintf "cat%d" i);
      Tree.node "name" [ Tree.text (Core.Prng.pick rng keywords) ];
      gen_description rng;
    ]

let generate ?(scale = 1.0) ~seed () =
  let rng = Core.Prng.create seed in
  let n base = max 1 (int_of_float (float_of_int base *. scale)) in
  Tree.node "site"
    [
      gen_regions rng ~items_per_region:(n 2);
      Tree.node "categories" (List.init (n 3) (gen_category rng));
      Tree.node "catgraph"
        (* Often empty, so incidental [catgraph/edge] filters wash out of
           learned queries within a couple of examples. *)
        (List.init (Core.Prng.int rng 2 * n 2) (fun i ->
             Tree.node "edge"
               [
                 attr "from" (Printf.sprintf "cat%d" i);
                 attr "to" (Printf.sprintf "cat%d" (i + 1));
               ]));
      gen_people rng ~count:(n 5);
      Tree.node "open_auctions" (List.init (n 4) (gen_open_auction rng));
      Tree.node "closed_auctions" (List.init (n 3) (gen_closed_auction rng));
    ]

let dtd =
  let r label re = (label, Automata.Regex.parse re) in
  Uschema.Dtd.make ~root:"site"
    ~rules:
      [
        r "site"
          "regions categories catgraph people open_auctions closed_auctions";
        r "regions" "africa asia australia europe namerica samerica";
        r "africa" "item+";
        r "asia" "item+";
        r "australia" "item+";
        r "europe" "item+";
        r "namerica" "item+";
        r "samerica" "item+";
        r "item"
          "@id location quantity name payment description shipping \
           incategory* mailbox?";
        r "incategory" "@category";
        r "description" "text | parlist";
        r "text" "keyword*";
        r "parlist" "listitem+";
        r "listitem" "text";
        r "categories" "category+";
        r "category" "@id name description";
        r "catgraph" "edge*";
        r "edge" "@from @to";
        r "people" "person+";
        r "person"
          "@id name emailaddress phone? address? homepage? creditcard? \
           profile? watches?";
        r "address" "street city country zipcode?";
        r "profile" "@income interest* education? gender? business age?";
        r "interest" "@category";
        r "watches" "watch*";
        r "watch" "@open_auction";
        r "open_auctions" "open_auction+";
        r "open_auction"
          "@id initial reserve? bidder* current privacy? itemref seller \
           annotation? quantity type interval";
        r "bidder" "date time personref increase";
        r "personref" "@person";
        r "itemref" "@item";
        r "seller" "@person";
        r "buyer" "@person";
        r "annotation" "description";
        r "interval" "start end";
        r "closed_auctions" "closed_auction+";
        r "closed_auction"
          "seller buyer itemref price date quantity type annotation?";
      ]

let schema =
  let r label dme = (label, Uschema.Dme.parse dme) in
  Uschema.Schema.make ~root:"site"
    ~rules:
      [
        r "site"
          "regions categories catgraph people open_auctions closed_auctions";
        r "regions" "africa asia australia europe namerica samerica";
        r "africa" "item+";
        r "asia" "item+";
        r "australia" "item+";
        r "europe" "item+";
        r "namerica" "item+";
        r "samerica" "item+";
        r "item"
          "@id location quantity name payment description shipping \
           incategory* mailbox?";
        r "incategory" "@category";
        r "description" "text | parlist";
        r "text" "keyword*";
        r "parlist" "listitem+";
        r "listitem" "text";
        r "categories" "category+";
        r "category" "@id name description";
        r "catgraph" "edge*";
        r "edge" "@from @to";
        r "people" "person+";
        r "person"
          "@id name emailaddress phone? address? homepage? creditcard? \
           profile? watches?";
        r "address" "street city country zipcode?";
        r "profile" "@income interest* education? gender? business age?";
        r "interest" "@category";
        r "watches" "watch*";
        r "watch" "@open_auction";
        r "open_auctions" "open_auction+";
        r "open_auction"
          "@id initial reserve? bidder* current privacy? itemref seller \
           annotation? quantity type interval";
        r "bidder" "date time personref increase";
        r "personref" "@person";
        r "itemref" "@item";
        r "seller" "@person";
        r "buyer" "@person";
        r "annotation" "description";
        r "interval" "start end";
        r "closed_auctions" "closed_auction+";
        r "closed_auction"
          "seller buyer itemref price date quantity type annotation?";
      ]
