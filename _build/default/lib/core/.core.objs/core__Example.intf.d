lib/core/example.mli: Format
