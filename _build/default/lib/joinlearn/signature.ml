type mask = int

type space = { left_arity : int; right_arity : int; pairs : (int * int) array }

let space ~left_arity ~right_arity =
  let dim = left_arity * right_arity in
  if dim > 62 then invalid_arg "Signature.space: more than 62 attribute pairs";
  let pairs =
    Array.init dim (fun k -> (k / right_arity, k mod right_arity))
  in
  { left_arity; right_arity; pairs }

let pairs sp = sp.pairs
let dimension sp = Array.length sp.pairs
let full sp = (1 lsl dimension sp) - 1

let index sp (i, j) =
  if i < 0 || i >= sp.left_arity || j < 0 || j >= sp.right_arity then
    invalid_arg "Signature.index: pair out of range";
  (i * sp.right_arity) + j

let of_predicate sp predicate =
  List.fold_left (fun m p -> m lor (1 lsl index sp p)) 0 predicate

let to_predicate sp mask =
  Array.to_list sp.pairs
  |> List.filteri (fun k _ -> mask land (1 lsl k) <> 0)

let signature sp rt st =
  let m = ref 0 in
  Array.iteri
    (fun k (i, j) ->
      if Relational.Value.equal rt.(i) st.(j) then m := !m lor (1 lsl k))
    sp.pairs;
  !m

let subset a b = a land lnot b = 0
let inter a b = a land b

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let mem mask k = mask land (1 lsl k) <> 0

let pp sp ppf mask =
  let items =
    to_predicate sp mask
    |> List.map (fun (i, j) -> Printf.sprintf "a%d=b%d" i j)
  in
  Format.fprintf ppf "{%s}" (String.concat ", " items)
