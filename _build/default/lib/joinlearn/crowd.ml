type report = {
  outcome : Interactive.Loop.outcome;
  spent : float;
  exhausted : bool;
}

let run ?rng ?strategy ~price_per_hit ~budget ~left ~right ~goal () =
  if price_per_hit <= 0. then invalid_arg "Crowd.run: non-positive price";
  let max_questions = int_of_float (budget /. price_per_hit) in
  let space =
    Signature.space
      ~left_arity:(Relational.Relation.arity left)
      ~right_arity:(Relational.Relation.arity right)
  in
  let goal_mask = Signature.of_predicate space goal in
  let items = Interactive.items_of space left right in
  let oracle (it : Interactive.item) = Signature.subset goal_mask it.mask in
  let outcome =
    Interactive.Loop.run ?rng ?strategy ~max_questions ~oracle ~items ()
  in
  {
    outcome;
    spent = Interactive.Loop.cost ~price_per_question:price_per_hit outcome;
    exhausted = outcome.questions >= max_questions;
  }
