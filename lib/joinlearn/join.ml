type example = Signature.mask Core.Example.t

let example sp (rt, st) label =
  Core.Example.of_labeled (Signature.signature sp rt st, label)

let most_specific sp sigs =
  List.fold_left Signature.inter (Signature.full sp) sigs

module Version_space = struct
  type t = {
    space : Signature.space;
    specific : Signature.mask;  (** intersection of positive signatures *)
    negatives : Signature.mask list;
  }

  let init space =
    { space; specific = Signature.full space; negatives = [] }

  let record vs mask label =
    if label then { vs with specific = Signature.inter vs.specific mask }
    else { vs with negatives = mask :: vs.negatives }

  (* A predicate θ is consistent iff θ ⊆ specific and θ ⊄ n for every
     negative n.  The most specific candidate dominates: if it fails a
     negative, every candidate does. *)
  let consistent vs =
    List.for_all (fun n -> not (Signature.subset vs.specific n)) vs.negatives

  let most_specific vs = vs.specific

  (* Checkpoint codec support: the version space is fully described by its
     lattice bounds, and the space itself is regenerated from the instance
     spec on resume — so a snapshot is just the masks. *)
  let snapshot vs = (vs.specific, vs.negatives)
  let restore space ~specific ~negatives = { space; specific; negatives }

  let m_tests = Core.Telemetry.Metrics.counter "learnq.join.signature_tests"

  (* [determined] runs ~100ns of bitmask work per call and is called once per
     candidate pair per question, so even the disabled-telemetry branch is a
     measurable fraction of it.  Shadow-count with a plain int (sub-ns) and
     flush into the real counter at the per-question [record] boundary.

     Under a {!Core.Pool} scan, worker domains increment this plain ref
     concurrently: increments can be lost, never torn (immediate ints are
     atomic in the OCaml 5 memory model).  The counter is observability
     only — an undercount is acceptable, a mutex here is not. *)
  let tests_pending = ref 0

  let flush_tests () =
    if !tests_pending > 0 then begin
      if Core.Telemetry.enabled () then
        Core.Telemetry.Metrics.incr m_tests ~by:!tests_pending;
      tests_pending := 0
    end

  let determined vs mask =
    incr tests_pending;
    if Signature.subset vs.specific mask then Some true
    else
      let ceiling = Signature.inter vs.specific mask in
      (* Predicates selecting the pair are exactly those ⊆ ceiling; they all
         violate some negative iff the ceiling itself does. *)
      if List.exists (fun n -> Signature.subset ceiling n) vs.negatives then
        Some false
      else None
end

let consistent sp examples =
  let vs =
    List.fold_left
      (fun vs (e : example) ->
        Version_space.record vs e.value (Core.Example.is_positive e))
      (Version_space.init sp) examples
  in
  Version_space.consistent vs

let learn sp examples =
  let vs =
    List.fold_left
      (fun vs (e : example) ->
        Version_space.record vs e.value (Core.Example.is_positive e))
      (Version_space.init sp) examples
  in
  if Version_space.consistent vs then Some (Version_space.most_specific vs)
  else None
