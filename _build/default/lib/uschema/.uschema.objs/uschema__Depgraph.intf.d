lib/uschema/depgraph.mli: Schema Twig
