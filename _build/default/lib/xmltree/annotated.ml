type t = { doc : Tree.t; target : Tree.path }

let make doc target =
  match Tree.node_at doc target with
  | None -> invalid_arg "Annotated.make: target path not in document"
  | Some _ -> { doc; target }

let target_node a =
  match Tree.node_at a.doc a.target with
  | Some n -> n
  | None -> assert false

let positive doc target = Core.Example.positive (make doc target)
let negative doc target = Core.Example.negative (make doc target)

let examples_of_answers doc ~answers =
  let module PS = Set.Make (struct
    type t = Tree.path

    let compare = List.compare Int.compare
  end) in
  let answer_set = PS.of_list answers in
  List.map
    (fun p ->
      if PS.mem p answer_set then positive doc p else negative doc p)
    (Tree.all_paths doc)

let pp ppf a =
  Format.fprintf ppf "@[%a@ @@ %a@]" Tree.pp a.doc Tree.pp_path a.target
