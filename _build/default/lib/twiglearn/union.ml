type instance = Xmltree.Annotated.t

let selects union a = List.exists (fun q -> Twig.Eval.selects_example q a) union

let characteristic (a : instance) = Twig.Query.of_example a.doc a.target

let rejects_all negatives q =
  List.for_all (fun n -> not (Twig.Eval.selects_example q n)) negatives

let consistent examples =
  let positives, negatives = Core.Example.partition examples in
  List.for_all
    (fun p -> rejects_all negatives (characteristic p))
    positives

let learn examples =
  let positives, negatives = Core.Example.partition examples in
  if not (consistent examples) then None
  else
    (* Greedily grow a cluster from each uncovered positive: a candidate
       joins when the enlarged LGG still rejects every negative. *)
    let rec cover uncovered acc =
      match uncovered with
      | [] -> Some (List.rev acc)
      | seed :: rest -> (
          let try_extend (cluster, query) candidate =
            match Positive.learn_positive (candidate :: cluster) with
            | Some q' when rejects_all negatives q' ->
                (candidate :: cluster, q')
            | _ -> (cluster, query)
          in
          match Positive.learn_positive [ seed ] with
          | None -> None
          | Some q0 ->
              if not (rejects_all negatives q0) then None
              else
                let cluster, query =
                  List.fold_left try_extend ([ seed ], q0) rest
                in
                ignore cluster;
                let still_uncovered =
                  List.filter
                    (fun p -> not (Twig.Eval.selects_example query p))
                    rest
                in
                cover still_uncovered (query :: acc))
    in
    cover positives []
