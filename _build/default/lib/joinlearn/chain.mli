(** Learning chains of joins across many relations — the extension the paper
    calls for explicitly: "we want to extend our approach to other operators
    and also to chains of joins between many relations" (Section 3).

    For relations R₁ … R_k, a chain query is a vector Θ = (θ₁ … θ_{k-1}) of
    equi-join predicates, θᵢ over attribute pairs of (Rᵢ, Rᵢ₊₁); it selects
    a k-tuple when every link's tuples agree on its θᵢ.  The pleasant fact
    (proved by the same argument as the binary case, link-wise): the
    intersections of the positive examples' link signatures form the unique
    most-specific consistent candidate, so consistency, learning, and the
    determined-label tests of the interactive protocol all stay polynomial
    — the blow-up lives in the pool size (|R₁|·…·|R_k| tuples), which is
    exactly what uninformative-pruning attacks. *)

type t
(** A chain context: the signature spaces of the k-1 links. *)

val make : Relational.Relation.t list -> t
(** @raise Invalid_argument on fewer than two relations. *)

val length : t -> int
(** Number of relations k. *)

val spaces : t -> Signature.space array

type vec = Signature.mask array
(** One mask per link; both queries and signatures. *)

val signature : t -> Relational.Relation.tuple list -> vec
(** Link-wise agreement of a k-tuple.
    @raise Invalid_argument on arity mismatch. *)

val selects : vec -> vec -> bool
(** [selects theta sig] iff θᵢ ⊆ sigᵢ for every link. *)

val of_predicates : t -> Relational.Algebra.predicate list -> vec
val to_predicates : t -> vec -> Relational.Algebra.predicate list

(** Link-wise version space with polynomial determined-label tests. *)
module Version_space : sig
  type vs

  val init : t -> vs
  val record : vs -> vec -> bool -> vs
  val consistent : vs -> bool
  val most_specific : vs -> vec
  val determined : vs -> vec -> bool option
end

val learn :
  t -> (vec * bool) list -> vec option
(** Most-specific consistent chain, when one exists (PTIME). *)

type item = { tuples : Relational.Relation.tuple list; mask : vec }

module Session :
  Core.Interact.SESSION with type query = vec and type item = item

module Loop : module type of Core.Interact.Make (Session)

val items_of : t -> Relational.Relation.t list -> item list
(** The full k-way Cartesian pool — mind the size; use generated relations
    with few rows. *)

val run_with_goal :
  ?rng:Core.Prng.t ->
  ?strategy:(Session.state, item) Core.Interact.strategy ->
  relations:Relational.Relation.t list ->
  goal:Relational.Algebra.predicate list ->
  unit ->
  Loop.outcome
