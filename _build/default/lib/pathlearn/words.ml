type hypothesis = { dfa : Automata.Dfa.t; expr : Expr.t option }

let of_expr e = { dfa = Automata.Dfa.minimize (Expr.to_dfa e); expr = Some e }

let learn ~pos ~neg =
  match Expr.learn ~pos ~neg with
  | Some e -> Some (of_expr e)
  | None -> (
      match Automata.Rpni.learn ~pos ~neg with
      | None -> None
      | Some dfa -> Some { dfa; expr = Expr.of_dfa dfa })

let selects h word = Automata.Dfa.accepts h.dfa word

let equal_hypothesis h1 h2 = Automata.Dfa.equal_language h1.dfa h2.dfa

let pp ppf h =
  match h.expr with
  | Some e -> Expr.pp ppf e
  | None -> Automata.Regex.pp ppf (Automata.Dfa.to_regex h.dfa)
