module Make (Ord : Map.OrderedType) = struct
  module M = Map.Make (Ord)

  type elt = Ord.t
  type t = int M.t

  let empty = M.empty
  let is_empty = M.is_empty

  let add ?(count = 1) x m =
    if count < 0 then invalid_arg "Multiset.add: negative count";
    if count = 0 then m
    else
      M.update x
        (function None -> Some count | Some c -> Some (c + count))
        m

  let remove ?(count = 1) x m =
    if count < 0 then invalid_arg "Multiset.remove: negative count";
    M.update x
      (function
        | None -> None
        | Some c -> if c <= count then None else Some (c - count))
      m

  let count x m = match M.find_opt x m with None -> 0 | Some c -> c
  let mem x m = M.mem x m
  let singleton x = M.singleton x 1
  let of_list xs = List.fold_left (fun m x -> add x m) empty xs
  let to_list m = M.bindings m

  let elements m =
    M.fold
      (fun x c acc ->
        let rec rep n acc = if n = 0 then acc else rep (n - 1) (x :: acc) in
        rep c acc)
      m []
    |> List.rev

  let support m = List.map fst (M.bindings m)
  let cardinal m = M.fold (fun _ c acc -> acc + c) m 0
  let distinct m = M.cardinal m

  let sum a b =
    M.union (fun _ ca cb -> Some (ca + cb)) a b

  let subset a b = M.for_all (fun x c -> count x b >= c) a
  let equal a b = M.equal Int.equal a b
  let compare a b = M.compare Int.compare a b
  let fold = M.fold

  let pp pp_elt ppf m =
    let items = to_list m in
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf (x, c) ->
           if c = 1 then pp_elt ppf x
           else Format.fprintf ppf "%a^%d" pp_elt x c))
      items
end
