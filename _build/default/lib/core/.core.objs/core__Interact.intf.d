lib/core/interact.mli: Format Prng
