lib/relational/algebra.ml: Array List Relation Set String Value
