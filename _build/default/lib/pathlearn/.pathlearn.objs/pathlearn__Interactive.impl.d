lib/pathlearn/interactive.ml: Automata Core Format Graphdb List String Words
