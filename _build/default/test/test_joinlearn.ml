(* Tests for join-query learning: signatures, version spaces, semijoin
   search, interactive sessions. *)

let qcheck = QCheck_alcotest.to_alcotest

let tuple vs = Array.of_list (List.map (fun i -> Relational.Value.Int i) vs)

let sp = Joinlearn.Signature.space ~left_arity:3 ~right_arity:2

(* ------------------------------------------------------------------ *)
(* Signatures                                                          *)
(* ------------------------------------------------------------------ *)

let test_space_dimension () =
  Alcotest.(check int) "3x2 pairs" 6 (Joinlearn.Signature.dimension sp);
  Alcotest.(check int) "full popcount" 6
    (Joinlearn.Signature.popcount (Joinlearn.Signature.full sp))

let test_space_too_large () =
  match Joinlearn.Signature.space ~left_arity:8 ~right_arity:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "64 pairs exceed the word size"

let test_predicate_roundtrip () =
  let p = [ (0, 1); (2, 0) ] in
  let m = Joinlearn.Signature.of_predicate sp p in
  Alcotest.(check (list (pair int int))) "roundtrip" p
    (Joinlearn.Signature.to_predicate sp m)

let test_signature_agreement () =
  let rt = tuple [ 1; 2; 3 ] and st = tuple [ 2; 3 ] in
  let m = Joinlearn.Signature.signature sp rt st in
  (* Agreements: a1=b0 (2) and a2=b1 (3). *)
  Alcotest.(check (list (pair int int))) "agreeing pairs"
    [ (1, 0); (2, 1) ]
    (Joinlearn.Signature.to_predicate sp m)

let test_subset () =
  let open Joinlearn.Signature in
  Alcotest.(check bool) "sub" true (subset 0b0010 0b0110);
  Alcotest.(check bool) "not sub" false (subset 0b1010 0b0110);
  Alcotest.(check bool) "empty sub anything" true (subset 0 0b1);
  Alcotest.(check int) "inter" 0b0010 (inter 0b1010 0b0110)

(* ------------------------------------------------------------------ *)
(* Join learning                                                       *)
(* ------------------------------------------------------------------ *)

let test_learn_most_specific () =
  let pos1 = Joinlearn.Signature.signature sp (tuple [ 1; 2; 3 ]) (tuple [ 2; 3 ]) in
  let pos2 = Joinlearn.Signature.signature sp (tuple [ 5; 7; 9 ]) (tuple [ 7; 9 ]) in
  let m = Joinlearn.Join.most_specific sp [ pos1; pos2 ] in
  Alcotest.(check (list (pair int int))) "intersection"
    [ (1, 0); (2, 1) ]
    (Joinlearn.Signature.to_predicate sp m)

let test_learn_consistent () =
  let ex pair label = Joinlearn.Join.example sp pair label in
  let examples =
    [
      ex (tuple [ 1; 2; 3 ], tuple [ 2; 3 ]) true;
      ex (tuple [ 1; 2; 3 ], tuple [ 9; 9 ]) false;
    ]
  in
  match Joinlearn.Join.learn sp examples with
  | Some m ->
      Alcotest.(check bool) "predicate rejects the negative" false
        (Joinlearn.Signature.subset m
           (Joinlearn.Signature.signature sp (tuple [ 1; 2; 3 ]) (tuple [ 9; 9 ])))
  | None -> Alcotest.fail "consistent sample"

let test_learn_inconsistent () =
  let ex pair label = Joinlearn.Join.example sp pair label in
  (* The same pair labeled both ways. *)
  let examples =
    [
      ex (tuple [ 1; 2; 3 ], tuple [ 2; 3 ]) true;
      ex (tuple [ 1; 2; 3 ], tuple [ 2; 3 ]) false;
    ]
  in
  Alcotest.(check bool) "inconsistent" true
    (Joinlearn.Join.learn sp examples = None)

let test_version_space_determined () =
  let open Joinlearn.Join.Version_space in
  let vs = init sp in
  (* Record a positive with signature {(0,0),(1,1)}. *)
  let s1 = Joinlearn.Signature.of_predicate sp [ (0, 0); (1, 1) ] in
  let vs = record vs s1 true in
  (* A pair agreeing on a superset of the specific set is forced positive. *)
  Alcotest.(check (option bool)) "superset forced positive" (Some true)
    (determined vs (Joinlearn.Signature.of_predicate sp [ (0, 0); (1, 1); (2, 0) ]));
  (* A disjoint pair is undetermined while no negative exists. *)
  Alcotest.(check (option bool)) "open" None
    (determined vs (Joinlearn.Signature.of_predicate sp [ (2, 1) ]));
  (* After a negative covering that candidate ceiling, it is forced. *)
  let vs = record vs (Joinlearn.Signature.of_predicate sp [ (2, 1); (0, 0) ]) false in
  Alcotest.(check (option bool)) "forced negative" (Some false)
    (determined vs (Joinlearn.Signature.of_predicate sp [ (2, 1) ]))

(* ------------------------------------------------------------------ *)
(* Semijoin learning                                                   *)
(* ------------------------------------------------------------------ *)

let semijoin_ctx rows =
  let right =
    Relational.Relation.make ~name:"S" ~attrs:[ "b0"; "b1" ] rows
  in
  let left = Relational.Relation.make ~name:"R" ~attrs:[ "a0"; "a1"; "a2" ] [] in
  Joinlearn.Semijoin.make left right

let test_semijoin_selects () =
  let ctx = semijoin_ctx [ tuple [ 1; 2 ]; tuple [ 7; 7 ] ] in
  let theta =
    Joinlearn.Signature.of_predicate (Joinlearn.Semijoin.space ctx) [ (0, 0) ]
  in
  Alcotest.(check bool) "witness exists" true
    (Joinlearn.Semijoin.selects ctx theta (tuple [ 1; 9; 9 ]));
  Alcotest.(check bool) "no witness" false
    (Joinlearn.Semijoin.selects ctx theta (tuple [ 3; 9; 9 ]))

let test_semijoin_exact_consistent () =
  let ctx = semijoin_ctx [ tuple [ 1; 2 ]; tuple [ 5; 6 ] ] in
  let labeled =
    [
      (tuple [ 1; 2; 0 ], true);   (* matches right (1,2) on a0=b0, a1=b1 *)
      (tuple [ 5; 6; 0 ], true);   (* matches right (5,6) likewise *)
      (tuple [ 9; 9; 9 ], false);
    ]
  in
  let out = Joinlearn.Semijoin.consistent_exact ctx labeled in
  (match out.theta with
  | Some theta ->
      Alcotest.(check bool) "selects positives" true
        (Joinlearn.Semijoin.selects ctx theta (tuple [ 1; 2; 0 ])
        && Joinlearn.Semijoin.selects ctx theta (tuple [ 5; 6; 0 ]));
      Alcotest.(check bool) "rejects negative" false
        (Joinlearn.Semijoin.selects ctx theta (tuple [ 9; 9; 9 ]))
  | None -> Alcotest.fail "a consistent semijoin exists");
  Alcotest.(check bool) "complete" true out.complete

let test_semijoin_exact_inconsistent () =
  let ctx = semijoin_ctx [ tuple [ 1; 2 ] ] in
  (* The same tuple as positive and negative. *)
  let labeled = [ (tuple [ 1; 2; 3 ], true); (tuple [ 1; 2; 3 ], false) ] in
  let out = Joinlearn.Semijoin.consistent_exact ctx labeled in
  Alcotest.(check bool) "no theta" true (out.theta = None)

let test_semijoin_greedy_can_fail_where_exact_succeeds () =
  (* Right tuples (1,9) and (2,2): for positive (2,2,_) the greedy picks the
     maximal-agreement witness; craft a sample where the greedy's choice on
     the first positive clashes with a negative, while a smaller theta is
     consistent. *)
  let ctx = semijoin_ctx [ tuple [ 1; 1 ]; tuple [ 2; 9 ] ] in
  let labeled =
    [
      (tuple [ 1; 1; 0 ], true);  (* greedy: theta = {a0b0,a1b1} via (1,1) *)
      (tuple [ 2; 1; 0 ], true);  (* forces dropping a1=b1 or switching *)
      (tuple [ 9; 1; 0 ], false);
    ]
  in
  let exact = Joinlearn.Semijoin.consistent_exact ctx labeled in
  Alcotest.(check bool) "exact finds a predicate" true (exact.theta <> None);
  match exact.theta with
  | Some theta ->
      Alcotest.(check bool) "exact is really consistent" true
        (List.for_all
           (fun (t, l) -> Joinlearn.Semijoin.selects ctx theta t = l)
           labeled)
  | None -> ()

let test_semijoin_node_limit () =
  let rng = Core.Prng.create 17 in
  let inst =
    Relational.Generator.pair_instance ~rng ~left_rows:12 ~right_rows:12 ()
  in
  let ctx = Joinlearn.Semijoin.make inst.left inst.right in
  let labeled =
    List.map (fun t -> (t, true)) (Relational.Relation.tuples inst.left)
  in
  let out = Joinlearn.Semijoin.consistent_exact ~node_limit:5 ctx labeled in
  Alcotest.(check bool) "limit reported" true
    (out.complete || out.explored <= 5)

let prop_exact_result_is_consistent =
  QCheck.Test.make ~name:"semijoin exact output is consistent" ~count:50
    QCheck.small_int
    (fun seed ->
      let rng = Core.Prng.create seed in
      let inst =
        Relational.Generator.pair_instance ~rng ~left_arity:3 ~right_arity:3
          ~left_rows:8 ~right_rows:6 ~domain:4 ()
      in
      let ctx = Joinlearn.Semijoin.make inst.left inst.right in
      let goal =
        Joinlearn.Signature.of_predicate (Joinlearn.Semijoin.space ctx)
          inst.planted
      in
      let labeled =
        List.map
          (fun t -> (t, Joinlearn.Semijoin.selects ctx goal t))
          (Relational.Relation.tuples inst.left)
      in
      let out = Joinlearn.Semijoin.consistent_exact ctx labeled in
      match out.theta with
      | None -> not out.complete
      | Some theta ->
          List.for_all
            (fun (t, l) -> Joinlearn.Semijoin.selects ctx theta t = l)
            labeled)

let test_semijoin_interactive () =
  let rng = Core.Prng.create 21 in
  let inst =
    Relational.Generator.pair_instance ~rng ~left_arity:3 ~right_arity:3
      ~left_rows:10 ~right_rows:8 ~domain:4 ()
  in
  let outcome =
    Joinlearn.Semijoin_interactive.run_with_goal ~rng ~left:inst.left
      ~right:inst.right ~goal:inst.planted ()
  in
  Alcotest.(check int) "pool covered"
    (Relational.Relation.cardinal inst.left)
    (outcome.questions + outcome.pruned);
  match outcome.query with
  | None -> Alcotest.fail "a consistent semijoin exists (the goal)"
  | Some learned ->
      let ctx = Joinlearn.Semijoin.make inst.left inst.right in
      let goal =
        Joinlearn.Signature.of_predicate (Joinlearn.Semijoin.space ctx)
          inst.planted
      in
      (* The learned predicate classifies every left tuple like the goal. *)
      List.iter
        (fun t ->
          Alcotest.(check bool) "same selection"
            (Joinlearn.Semijoin.selects ctx goal t)
            (Joinlearn.Semijoin.selects ctx learned t))
        (Relational.Relation.tuples inst.left)

let test_semijoin_interactive_requires_context () =
  match Joinlearn.Semijoin_interactive.Session.init [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bare init must be rejected"

(* ------------------------------------------------------------------ *)
(* Robust (agreement-maximizing) learning                              *)
(* ------------------------------------------------------------------ *)

let test_robust_consistent_matches_exact () =
  let ex pair label = Joinlearn.Join.example sp pair label in
  let examples =
    [
      ex (tuple [ 1; 2; 3 ], tuple [ 2; 3 ]) true;
      ex (tuple [ 1; 2; 3 ], tuple [ 9; 9 ]) false;
    ]
  in
  let out = Joinlearn.Robust.learn sp examples in
  Alcotest.(check int) "no training errors" 0 out.training_errors;
  Alcotest.(check int) "nothing ignored" 0 out.ignored;
  match Joinlearn.Join.learn sp examples with
  | Some exact -> Alcotest.(check bool) "same predicate" true (exact = out.theta)
  | None -> Alcotest.fail "consistent sample"

let test_robust_handles_noise () =
  (* A mislabeled positive with an empty signature would wreck the
     intersection; the robust learner ignores it. *)
  let clean_sig = Joinlearn.Signature.of_predicate sp [ (0, 0); (1, 1) ] in
  let noise_sig = 0 in
  let examples =
    [
      Core.Example.positive clean_sig;
      Core.Example.positive clean_sig;
      Core.Example.positive noise_sig;
      (* negatives that the clean predicate rejects *)
      Core.Example.negative (Joinlearn.Signature.of_predicate sp [ (0, 0) ]);
      Core.Example.negative (Joinlearn.Signature.of_predicate sp [ (2, 1) ]);
    ]
  in
  Alcotest.(check bool) "exact learner fails" true
    (Joinlearn.Join.learn sp examples = None);
  let out = Joinlearn.Robust.learn sp examples in
  Alcotest.(check int) "one positive ignored" 1 out.ignored;
  Alcotest.(check int) "only the noise misclassified" 1 out.training_errors;
  Alcotest.(check bool) "clean positives selected" true
    (Joinlearn.Signature.subset out.theta clean_sig)

(* ------------------------------------------------------------------ *)
(* Chains                                                              *)
(* ------------------------------------------------------------------ *)

let chain_relations =
  [
    Relational.Relation.make ~name:"R1" ~attrs:[ "a"; "b" ]
      [ tuple [ 1; 2 ]; tuple [ 3; 4 ] ];
    Relational.Relation.make ~name:"R2" ~attrs:[ "c"; "d" ]
      [ tuple [ 2; 5 ]; tuple [ 4; 6 ] ];
    Relational.Relation.make ~name:"R3" ~attrs:[ "e" ]
      [ tuple [ 5 ]; tuple [ 6 ]; tuple [ 9 ] ];
  ]

let chain_goal = [ [ (1, 0) ]; [ (1, 0) ] ]
(* R1.b = R2.c and R2.d = R3.e *)

let test_chain_signature_selects () =
  let c = Joinlearn.Chain.make chain_relations in
  Alcotest.(check int) "three relations" 3 (Joinlearn.Chain.length c);
  let goal = Joinlearn.Chain.of_predicates c chain_goal in
  let good = Joinlearn.Chain.signature c [ tuple [ 1; 2 ]; tuple [ 2; 5 ]; tuple [ 5 ] ] in
  let bad = Joinlearn.Chain.signature c [ tuple [ 1; 2 ]; tuple [ 4; 6 ]; tuple [ 6 ] ] in
  Alcotest.(check bool) "chain match" true (Joinlearn.Chain.selects goal good);
  Alcotest.(check bool) "broken first link" false (Joinlearn.Chain.selects goal bad);
  Alcotest.(check (list (list (pair int int)))) "predicate roundtrip"
    chain_goal
    (Joinlearn.Chain.to_predicates c goal)

let test_chain_learn () =
  let c = Joinlearn.Chain.make chain_relations in
  let goal = Joinlearn.Chain.of_predicates c chain_goal in
  let labeled =
    List.map
      (fun (it : Joinlearn.Chain.item) ->
        (it.mask, Joinlearn.Chain.selects goal it.mask))
      (Joinlearn.Chain.items_of c chain_relations)
  in
  match Joinlearn.Chain.learn c labeled with
  | None -> Alcotest.fail "consistent by construction"
  | Some learned ->
      List.iter
        (fun (mask, label) ->
          Alcotest.(check bool) "same selection" label
            (Joinlearn.Chain.selects learned mask))
        labeled

let test_chain_interactive () =
  let outcome =
    Joinlearn.Chain.run_with_goal ~rng:(Core.Prng.create 12)
      ~relations:chain_relations ~goal:chain_goal ()
  in
  let pool = 2 * 2 * 3 in
  Alcotest.(check int) "pool covered" pool (outcome.questions + outcome.pruned);
  match outcome.query with
  | None -> Alcotest.fail "candidate expected"
  | Some learned ->
      let c = Joinlearn.Chain.make chain_relations in
      let goal = Joinlearn.Chain.of_predicates c chain_goal in
      List.iter
        (fun (it : Joinlearn.Chain.item) ->
          Alcotest.(check bool) "selection recovered"
            (Joinlearn.Chain.selects goal it.mask)
            (Joinlearn.Chain.selects learned it.mask))
        (Joinlearn.Chain.items_of c chain_relations)

let test_chain_rejects_short () =
  match Joinlearn.Chain.make [ List.hd chain_relations ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "one relation is not a chain"

(* ------------------------------------------------------------------ *)
(* Interactive                                                         *)
(* ------------------------------------------------------------------ *)

let run_session ~seed ~strategy =
  let rng = Core.Prng.create seed in
  let inst = Relational.Generator.pair_instance ~rng () in
  let outcome =
    Joinlearn.Interactive.run_with_goal ~rng ~strategy ~left:inst.left
      ~right:inst.right ~goal:inst.planted ()
  in
  (inst, outcome)

let check_recovers_goal (inst : Relational.Generator.pair_instance) outcome =
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  let goal = Joinlearn.Signature.of_predicate space inst.planted in
  match (outcome : Joinlearn.Interactive.Loop.outcome).query with
  | None -> Alcotest.fail "session must end with a candidate"
  | Some learned ->
      (* The learned predicate selects exactly the pairs the goal selects. *)
      let items = Joinlearn.Interactive.items_of space inst.left inst.right in
      List.iter
        (fun (it : Joinlearn.Interactive.item) ->
          Alcotest.(check bool) "same selection"
            (Joinlearn.Signature.subset goal it.mask)
            (Joinlearn.Signature.subset learned it.mask))
        items

let test_interactive_first_strategy () =
  let inst, outcome = run_session ~seed:3 ~strategy:Core.Interact.first_strategy in
  check_recovers_goal inst outcome

let test_interactive_lattice_strategy () =
  let inst, outcome =
    run_session ~seed:4 ~strategy:Joinlearn.Interactive.lattice_strategy
  in
  check_recovers_goal inst outcome

let test_interactive_split_strategy () =
  let inst, outcome =
    run_session ~seed:5 ~strategy:(Joinlearn.Interactive.split_strategy ())
  in
  check_recovers_goal inst outcome

let test_interactive_prunes_bulk () =
  let _inst, outcome = run_session ~seed:6 ~strategy:Core.Interact.first_strategy in
  Alcotest.(check bool) "orders of magnitude pruned" true
    (outcome.pruned > 10 * outcome.questions)

let test_crowd_budget () =
  let rng = Core.Prng.create 9 in
  let inst = Relational.Generator.pair_instance ~rng () in
  let report =
    Joinlearn.Crowd.run ~rng ~price_per_hit:0.1 ~budget:1.0 ~left:inst.left
      ~right:inst.right ~goal:inst.planted ()
  in
  Alcotest.(check bool) "at most 10 questions" true
    (report.outcome.questions <= 10);
  Alcotest.(check bool) "spend within budget" true (report.spent <= 1.0 +. 1e-9)

let () =
  Alcotest.run "joinlearn"
    [
      ( "signature",
        [
          Alcotest.test_case "dimension" `Quick test_space_dimension;
          Alcotest.test_case "too large" `Quick test_space_too_large;
          Alcotest.test_case "predicate roundtrip" `Quick test_predicate_roundtrip;
          Alcotest.test_case "agreement" `Quick test_signature_agreement;
          Alcotest.test_case "subset/inter" `Quick test_subset;
        ] );
      ( "join",
        [
          Alcotest.test_case "most specific" `Quick test_learn_most_specific;
          Alcotest.test_case "consistent" `Quick test_learn_consistent;
          Alcotest.test_case "inconsistent" `Quick test_learn_inconsistent;
          Alcotest.test_case "version space determined" `Quick test_version_space_determined;
        ] );
      ( "semijoin",
        [
          Alcotest.test_case "selects" `Quick test_semijoin_selects;
          Alcotest.test_case "exact consistent" `Quick test_semijoin_exact_consistent;
          Alcotest.test_case "exact inconsistent" `Quick test_semijoin_exact_inconsistent;
          Alcotest.test_case "exact beats greedy" `Quick test_semijoin_greedy_can_fail_where_exact_succeeds;
          Alcotest.test_case "node limit" `Quick test_semijoin_node_limit;
          Alcotest.test_case "interactive" `Slow test_semijoin_interactive;
          Alcotest.test_case "interactive needs context" `Quick test_semijoin_interactive_requires_context;
          qcheck prop_exact_result_is_consistent;
        ] );
      ( "robust",
        [
          Alcotest.test_case "consistent matches exact" `Quick test_robust_consistent_matches_exact;
          Alcotest.test_case "handles noise" `Quick test_robust_handles_noise;
        ] );
      ( "chain",
        [
          Alcotest.test_case "signature and selects" `Quick test_chain_signature_selects;
          Alcotest.test_case "learn" `Quick test_chain_learn;
          Alcotest.test_case "interactive" `Quick test_chain_interactive;
          Alcotest.test_case "rejects single relation" `Quick test_chain_rejects_short;
        ] );
      ( "interactive",
        [
          Alcotest.test_case "first strategy" `Slow test_interactive_first_strategy;
          Alcotest.test_case "lattice strategy" `Slow test_interactive_lattice_strategy;
          Alcotest.test_case "split strategy" `Slow test_interactive_split_strategy;
          Alcotest.test_case "prunes in bulk" `Slow test_interactive_prunes_bulk;
          Alcotest.test_case "crowd budget" `Quick test_crowd_budget;
        ] );
    ]
