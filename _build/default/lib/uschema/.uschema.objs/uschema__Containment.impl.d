lib/uschema/containment.ml: Dme List Multiplicity Schema Set String
