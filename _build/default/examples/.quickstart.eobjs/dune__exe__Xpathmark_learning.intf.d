examples/xpathmark_learning.mli:
