type reply = Label of bool | Refused | Timed_out
type profile = { noise : float; refusal : float; timeout : float }

let reliable = { noise = 0.; refusal = 0.; timeout = 0. }

let profile ?(noise = 0.) ?(refusal = 0.) ?(timeout = 0.) () =
  let rate name r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Flaky.profile: %s rate %g not in [0,1]" name r)
  in
  rate "noise" noise;
  rate "refusal" refusal;
  rate "timeout" timeout;
  if refusal +. timeout > 1. then
    invalid_arg "Flaky.profile: refusal + timeout exceeds 1";
  { noise; refusal; timeout }

let wrap ?(profile = reliable) ~rng oracle item =
  let r = Prng.float rng 1.0 in
  if r < profile.refusal then Refused
  else if r < profile.refusal +. profile.timeout then Timed_out
  else
    let label = oracle item in
    Label (if Prng.chance rng profile.noise then not label else label)
