(** Deterministic pseudo-random number generation (SplitMix64).

    All workload generators and randomized experiments in this repository are
    seeded through this module, so every experiment is reproducible bit-for-bit
    across runs and machines.  The generator is the SplitMix64 algorithm of
    Steele, Lea and Flood, which has a 64-bit state, passes BigCrush, and
    supports cheap stream splitting. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state as [g]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent from the remainder of [g]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0], naming the offending value. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument when [hi < lo], naming the offending range. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g k xs] draws [min k (length xs)] distinct elements, in random
    order. *)
