(* Fuzzing-harness throughput (PR 5): cases per second for every
   differential oracle at the CI configuration (seed 42, sizes 1–10).

   The number that matters operationally is how many iterations the
   fuzz-smoke CI lane can afford: this bench writes per-oracle rates to
   BENCH_PR5.json so the lane's --iters budget is sized from data rather
   than folklore.  A green run is also asserted — a failing oracle would
   make its rate meaningless (the runner stops an oracle at its first
   counterexample). *)

let iters = 60
let seed = 42

let time f =
  let t0 = Core.Monotonic.now () in
  let x = f () in
  (x, Core.Monotonic.now () -. t0)

let run () =
  let rows =
    List.map
      (fun oracle ->
        let name = Fuzz.Oracle.name oracle in
        let report, elapsed =
          time (fun () ->
              Fuzz.Runner.run ~oracles:[ oracle ] ~iters ~seed ())
        in
        let stats = List.hd report.Fuzz.Runner.stats in
        let rate =
          if elapsed > 0.0 then float_of_int stats.Fuzz.Runner.runs /. elapsed
          else infinity
        in
        Printf.printf "%-18s %6d cases  %8.1f cases/s%s\n%!" name
          stats.Fuzz.Runner.runs rate
          (if stats.Fuzz.Runner.failures > 0 then "  COUNTEREXAMPLE" else "");
        (name, stats.Fuzz.Runner.failures, rate))
      Fuzz.Oracle.all
  in
  let all_green = List.for_all (fun (_, failures, _) -> failures = 0) rows in
  let oc = open_out "BENCH_PR5.json" in
  Printf.fprintf oc "{\n  \"iters\": %d,\n  \"seed\": %d,\n" iters seed;
  Printf.fprintf oc "  \"all_oracles_green\": %b,\n  \"cases_per_sec\": {\n"
    all_green;
  List.iteri
    (fun i (name, _, rate) ->
      Printf.fprintf oc "    %S: %.1f%s\n" name rate
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_PR5.json (all green: %b)\n%!" all_green
