lib/core/stats.ml: Float List Unix
