lib/joinlearn/robust.mli: Core Signature
