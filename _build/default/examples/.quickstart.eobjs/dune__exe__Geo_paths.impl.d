examples/geo_paths.ml: Automata Core Format Graphdb List Pathlearn Printf String
