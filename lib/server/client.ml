type t = { fd : Unix.file_descr; mutable buf : string }

let connect ~host ~port =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      try
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        Ok { fd; buf = "" }
      with
      | Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e)
      | Failure msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error msg)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

(* Read until [t.buf] satisfies [probe] (which returns how many bytes it
   still needs, 0 = done). *)
let read_until t probe =
  let chunk = Bytes.create 4096 in
  let rec go () =
    if probe t.buf = 0 then Ok ()
    else
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed mid response"
      | n ->
          t.buf <- t.buf ^ Bytes.sub_string chunk 0 n;
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go ()

let find_sub hay needle from =
  let hn = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > hn then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let request t ~meth ~path ?tenant ?(headers = []) ?body () =
  let body_s = Option.map Json.to_string body in
  let head =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: learnq\r\n%s%s%s\r\n" meth path
      (match tenant with
      | Some ten -> Printf.sprintf "x-learnq-tenant: %s\r\n" ten
      | None -> "")
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
      (match body_s with
      | Some b -> Printf.sprintf "Content-Length: %d\r\n" (String.length b)
      | None -> "Content-Length: 0\r\n")
  in
  match write_all t.fd (head ^ Option.value ~default:"" body_s) with
  | Error _ as e -> e
  | Ok () -> (
      (* head *)
      let head_end s =
        match find_sub s "\r\n\r\n" 0 with Some _ -> 0 | None -> 1
      in
      match read_until t head_end with
      | Error _ as e -> e
      | Ok () -> (
          let i = Option.get (find_sub t.buf "\r\n\r\n" 0) in
          let raw_head = String.sub t.buf 0 i in
          let rest_off = i + 4 in
          let lines = String.split_on_char '\n' raw_head in
          let status =
            match lines with
            | status_line :: _ -> (
                match String.split_on_char ' ' status_line with
                | _ :: code :: _ -> int_of_string_opt code
                | _ -> None)
            | [] -> None
          in
          let content_length =
            List.fold_left
              (fun acc line ->
                let line = String.trim line in
                match String.index_opt line ':' with
                | Some j
                  when String.lowercase_ascii (String.sub line 0 j)
                       = "content-length" ->
                    int_of_string_opt
                      (String.trim
                         (String.sub line (j + 1) (String.length line - j - 1)))
                | _ -> acc)
              None lines
          in
          match (status, content_length) with
          | None, _ -> Error ("bad status line in " ^ raw_head)
          | _, None -> Error "response without content-length"
          | Some status, Some len -> (
              let need s = max 0 (rest_off + len - String.length s) in
              match read_until t need with
              | Error _ as e -> e
              | Ok () ->
                  let body = String.sub t.buf rest_off len in
                  t.buf <-
                    String.sub t.buf (rest_off + len)
                      (String.length t.buf - rest_off - len);
                  let body = String.trim body in
                  let j =
                    match Json.parse body with
                    | Ok j -> j
                    | Error _ -> Json.Str body
                  in
                  Ok (status, j))))
