type pair_instance = {
  left : Relation.t;
  right : Relation.t;
  planted : Algebra.predicate;
}

let random_tuple rng arity domain =
  Array.init arity (fun _ -> Value.Int (Core.Prng.int rng domain))

let random_relation ~rng ~name ~attrs ~rows ~domain =
  let arity = List.length attrs in
  Relation.make ~name ~attrs
    (List.init rows (fun _ -> random_tuple rng arity domain))

let attr_names prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let pair_instance ~rng ?(left_arity = 4) ?(right_arity = 4) ?(left_rows = 30)
    ?(right_rows = 30) ?(domain = 8) ?(planted_pairs = 2) () =
  let planted =
    let k = min planted_pairs (min left_arity right_arity) in
    let lefts = Core.Prng.sample rng k (List.init left_arity Fun.id) in
    let rights = Core.Prng.sample rng k (List.init right_arity Fun.id) in
    List.combine lefts rights
  in
  let left_tuples =
    List.init left_rows (fun _ -> random_tuple rng left_arity domain)
  in
  (* Right tuples: half random, half echoing a left tuple along the planted
     pairs so the goal join is non-empty. *)
  let right_tuples =
    List.init right_rows (fun i ->
        let t = random_tuple rng right_arity domain in
        if i mod 2 = 0 && left_tuples <> [] then begin
          let src = Core.Prng.pick rng left_tuples in
          List.iter (fun (li, rj) -> t.(rj) <- src.(li)) planted;
          t
        end
        else t)
  in
  {
    left =
      Relation.make ~name:"R" ~attrs:(attr_names "a" left_arity) left_tuples;
    right =
      Relation.make ~name:"S" ~attrs:(attr_names "b" right_arity) right_tuples;
    planted;
  }
