type t = {
  host : string;
  port : int;
  mutable fd : Unix.file_descr;
  mutable buf : string;
  mutable used : bool;
      (** a request has completed on this socket — a later failure may be
          the server having evicted the parked connection, not an error *)
}

let connect_fd ~host ~port =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      try
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
        Ok fd
      with
      | Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e)
      | Failure msg ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error msg)

let connect ~host ~port =
  Result.map
    (fun fd -> { host; port; fd; buf = ""; used = false })
    (connect_fd ~host ~port)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* [`Stale]: the socket died in a way consistent with the server having
   closed a parked keep-alive connection (idle eviction, drain, restart)
   — as opposed to failing mid-response. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Error `Stale
      | exception Unix.Unix_error (e, _, _) ->
          Error (`Err (Unix.error_message e))
  in
  go 0

(* Read until [t.buf] satisfies [probe] (which returns how many bytes it
   still needs, 0 = done).  [start] is the buffer length when this
   response began: EOF with nothing read since then is a stale keep-alive
   close, EOF later is a truncated response. *)
let read_until t ~start probe =
  let chunk = Bytes.create 4096 in
  let rec go () =
    if probe t.buf = 0 then Ok ()
    else
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          if String.length t.buf = start then Error `Stale
          else Error (`Err "connection closed mid response")
      | n ->
          t.buf <- t.buf ^ Bytes.sub_string chunk 0 n;
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          if String.length t.buf = start then Error `Stale
          else Error (`Err "connection reset mid response")
      | exception Unix.Unix_error (e, _, _) ->
          Error (`Err (Unix.error_message e))
  in
  go ()

let find_sub hay needle from =
  let hn = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > hn then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let attempt t ~meth ~path ~tenant ~headers ~body_s =
  let head =
    Printf.sprintf "%s %s HTTP/1.1\r\nHost: learnq\r\n%s%s%s\r\n" meth path
      (match tenant with
      | Some ten -> Printf.sprintf "x-learnq-tenant: %s\r\n" ten
      | None -> "")
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
      (match body_s with
      | Some b -> Printf.sprintf "Content-Length: %d\r\n" (String.length b)
      | None -> "Content-Length: 0\r\n")
  in
  let start = String.length t.buf in
  match write_all t.fd (head ^ Option.value ~default:"" body_s) with
  | Error _ as e -> e
  | Ok () -> (
      (* head *)
      let head_end s =
        match find_sub s "\r\n\r\n" start with Some _ -> 0 | None -> 1
      in
      match read_until t ~start head_end with
      | Error _ as e -> e
      | Ok () -> (
          let i = Option.get (find_sub t.buf "\r\n\r\n" start) in
          let raw_head = String.sub t.buf start (i - start) in
          let rest_off = i + 4 in
          let lines = String.split_on_char '\n' raw_head in
          let status =
            match lines with
            | status_line :: _ -> (
                match String.split_on_char ' ' status_line with
                | _ :: code :: _ -> int_of_string_opt code
                | _ -> None)
            | [] -> None
          in
          let content_length =
            List.fold_left
              (fun acc line ->
                let line = String.trim line in
                match String.index_opt line ':' with
                | Some j
                  when String.lowercase_ascii (String.sub line 0 j)
                       = "content-length" ->
                    int_of_string_opt
                      (String.trim
                         (String.sub line (j + 1) (String.length line - j - 1)))
                | _ -> acc)
              None lines
          in
          match (status, content_length) with
          | None, _ -> Error (`Err ("bad status line in " ^ raw_head))
          | _, None -> Error (`Err "response without content-length")
          | Some status, Some len -> (
              let need s = max 0 (rest_off + len - String.length s) in
              match read_until t ~start need with
              | Error _ as e -> e
              | Ok () ->
                  let body = String.sub t.buf rest_off len in
                  t.buf <-
                    String.sub t.buf (rest_off + len)
                      (String.length t.buf - rest_off - len);
                  let body = String.trim body in
                  let j =
                    match Json.parse body with
                    | Ok j -> j
                    | Error _ -> Json.Str body
                  in
                  t.used <- true;
                  Ok (status, j))))

let request t ~meth ~path ?tenant ?(headers = []) ?body () =
  let body_s = Option.map Json.to_string body in
  match attempt t ~meth ~path ~tenant ~headers ~body_s with
  | Ok r -> Ok r
  | Error (`Err msg) -> Error msg
  | Error `Stale when t.used -> (
      (* The parked connection was evicted (idle cap, drain, restart)
         between requests — not an error, the protocol allows it.  The
         socket died before a single response byte, so the request was
         never processed: reconnect and retry exactly once. *)
      close t;
      match connect_fd ~host:t.host ~port:t.port with
      | Error msg -> Error ("reconnect after stale keep-alive: " ^ msg)
      | Ok fd -> (
          t.fd <- fd;
          t.buf <- "";
          t.used <- false;
          match attempt t ~meth ~path ~tenant ~headers ~body_s with
          | Ok r -> Ok r
          | Error (`Err msg) -> Error msg
          | Error `Stale -> Error "connection closed before response"))
  | Error `Stale -> Error "connection closed before response"
