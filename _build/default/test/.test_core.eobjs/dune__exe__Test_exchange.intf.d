test/test_exchange.mli:
