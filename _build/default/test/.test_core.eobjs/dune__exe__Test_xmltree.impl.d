test/test_xmltree.ml: Alcotest Annotated Core List Parse Print QCheck QCheck_alcotest Tree Xmltree
