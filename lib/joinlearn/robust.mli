(** Agreement-maximizing join learning for inconsistent samples — the
    relational face of the paper's approximate framework (Section 3: when
    consistency is out of reach, "some of the annotations might be ignored
    to be able to compute in polynomial time a candidate query").

    Candidate predicates are intersections of subsets of the positive
    signatures; the learner starts from the intersection of all of them and
    greedily un-ignores the positive whose exclusion most reduces training
    error, stopping at a local optimum.  On consistent samples nothing is
    ignored and the result coincides with {!Join.learn}. *)

type outcome = {
  theta : Signature.mask;
  training_errors : int;  (** misclassified sample examples *)
  ignored : int;  (** positives excluded from the intersection *)
}

val learn :
  ?budget:Core.Budget.t ->
  Signature.space -> Signature.mask Core.Example.t list -> outcome
(** Never raises on budget exhaustion: the greedy descent stops at the
    current predicate (one tick per candidate exclusion scored, weighted by
    sample size). *)

val errors_of :
  Signature.mask -> Signature.mask Core.Example.t list -> int
(** Number of examples the predicate misclassifies. *)
