(** Learning anchored twig queries from positive examples only — the
    learnability result of Staworko & Wieczorek the paper builds on
    (Section 2): "the subclass of anchored twig queries … learnable from
    positive examples only, where the examples are XML documents with
    annotated nodes".

    [learn_positive examples] folds the least general generalization
    ({!Twig.Lgg}) over the characteristic queries of the examples and
    minimizes the result.  The output selects every example node; on
    examples drawn from an anchored goal query it converges to a query
    equivalent to the goal — generally after very few examples
    (experiment E1). *)

type instance = Xmltree.Annotated.t

val characteristic : instance -> Twig.Query.t
(** The characteristic query of an annotated node ({!Twig.Query.of_example}),
    memoized per document in a bounded per-domain table: determined-probes
    revisit the same pool items every round, and all of a session's items
    share one document (recognized by physical equality).  Cache traffic is
    counted by [learnq.twiglearn.char_cache_hits]/[_misses]. *)

val set_char_cache : bool -> unit
(** Ablation switch (default [true]): [false] disables the characteristic
    memo so every call rebuilds the query — the pre-PR 4 behavior, for
    [bench pr4] baselines. *)

val learn_positive : instance list -> Twig.Query.t option
(** [None] on the empty list or when the generalization leaves the anchored
    fragment (e.g. examples whose annotated nodes have different labels). *)

val learn_path : instance list -> Twig.Query.t option
(** Same, restricted to path queries: filters are stripped before merging —
    the smaller class of Staworko & Wieczorek. *)

(** Incremental maintenance of the positive-example LGG.

    [Lgg.lgg] is the fold operator of {!learn_positive}; keeping the fold's
    running value turns each new example into {e one} merge instead of a
    refold of the whole history, and each would-this-stay-consistent probe
    into one merge {e without} minimization.  This is what collapsed the
    [twig.lgg] span from 62% of interactive learn-twig wall time (PR 3
    profile) — see BENCH_PR4.json.  Equivalence with the batch learner on
    the same example order is property-tested in [test_twiglearn.ml]. *)
module Incremental : sig
  type acc
  (** The raw (unminimized) LGG of the examples added so far, in arrival
      order — exactly the intermediate value of {!learn_positive}'s fold. *)

  val empty : acc

  val raw : acc -> Twig.Query.t option
  (** The accumulator's unminimized query — [None] before any example.
      Stable in physical identity between additions, which is what the
      session probe memo keys its invalidation on. *)

  val add : acc -> instance -> acc
  (** One {!Twig.Lgg.lgg} merge with the item's (memoized) characteristic. *)

  val candidate : acc -> Twig.Query.t option
  (** Minimize and anchor-check: [candidate (add ... (add empty x1) ... xn)]
      equals [learn_positive [x1; ...; xn]]. *)

  val extend_consistent : acc -> instance -> Twig.Query.t option
  (** [extend_consistent acc item] is the unminimized query the accumulator
      would generalize to if [item] were added — [None] when that leaves
      the anchored fragment.  Selection-equivalent to
      [candidate (add acc item)] (minimization only drops implied filters;
      anchoredness is settled before minimization), skipping the minimize
      that dominated determined-probes. *)
end

(** The twig concept (plugs into {!Core.Concept} functors). *)
module Concept :
  Core.Concept.CONCEPT
    with type query = Twig.Query.t
     and type instance = instance
