module SSet = Set.Make (String)
module SMap = Map.Make (String)

let support_of w = SSet.of_list (Dme.Labels.support w)

(* One clause from a group of multisets sharing a support: per-label
   multiplicity covering the observed count range. *)
let clause_of_group support group =
  SSet.elements support
  |> List.map (fun l ->
         let counts = List.map (fun w -> Dme.Labels.count l w) group in
         let lo = List.fold_left min max_int counts
         and hi = List.fold_left max 0 counts in
         (l, Multiplicity.of_counts ~lo ~hi))
  |> Dme.clause

(* Relax a multiplicity to admit count 0. *)
let nullable_of = function
  | Multiplicity.One | Multiplicity.Opt -> Multiplicity.Opt
  | Multiplicity.Plus | Multiplicity.Star -> Multiplicity.Star

(* Merge clause [small] (with smaller support) into [big]: labels missing
   from [small] become nullable in the merge; shared labels take the union
   of count ranges. *)
let merge_into small big =
  let join m1 m2 =
    let lo1, hi1 = Multiplicity.interval m1
    and lo2, hi2 = Multiplicity.interval m2 in
    let lo = min lo1 lo2 in
    let hi =
      match (hi1, hi2) with Some a, Some b -> max a b | _ -> 2 (* ∞ *)
    in
    Multiplicity.of_counts ~lo ~hi
  in
  List.map
    (fun (l, mb) ->
      match List.assoc_opt l small with
      | Some ms -> (l, join ms mb)
      | None -> (l, nullable_of mb))
    big

let infer_dme multisets =
  if multisets = [] then invalid_arg "Infer.infer_dme: no observations";
  let groups =
    List.fold_left
      (fun acc w ->
        let key = support_of w in
        let existing =
          match List.find_opt (fun (s, _) -> SSet.equal s key) acc with
          | Some (_, ws) -> ws
          | None -> []
        in
        (key, w :: existing)
        :: List.filter (fun (s, _) -> not (SSet.equal s key)) acc)
      [] multisets
  in
  let clauses =
    List.map (fun (support, ws) -> (support, clause_of_group support ws)) groups
  in
  (* Fold strictly-included supports into their superset clause. *)
  let rec fold_subsets clauses =
    let absorbed =
      List.find_opt
        (fun (s1, _) ->
          List.exists
            (fun (s2, _) -> (not (SSet.equal s1 s2)) && SSet.subset s1 s2)
            clauses)
        clauses
    in
    match absorbed with
    | None -> clauses
    | Some ((s1, c1) as entry) ->
        let rest = List.filter (fun e -> e != entry) clauses in
        let updated =
          List.map
            (fun (s2, c2) ->
              if SSet.subset s1 s2 then (s2, merge_into c1 c2) else (s2, c2))
            rest
        in
        fold_subsets updated
  in
  Dme.make (List.map snd (fold_subsets clauses))

let observations docs =
  List.fold_left
    (fun acc doc ->
      Xmltree.Tree.fold
        (fun _ (n : Xmltree.Tree.t) acc ->
          if Xmltree.Tree.is_text n then acc
          else
            let w =
              n.children
              |> List.filter (fun c -> not (Xmltree.Tree.is_text c))
              |> List.map (fun (c : Xmltree.Tree.t) -> c.label)
              |> Dme.Labels.of_list
            in
            SMap.update n.label
              (function None -> Some [ w ] | Some ws -> Some (w :: ws))
              acc)
        doc acc)
    SMap.empty docs

let infer_with per_label docs =
  match docs with
  | [] -> None
  | (first : Xmltree.Tree.t) :: rest ->
      if
        List.exists
          (fun (d : Xmltree.Tree.t) -> d.label <> first.label)
          rest
      then None
      else
        let rules =
          SMap.bindings (observations docs)
          |> List.filter_map (fun (l, ws) ->
                 let dme = per_label ws in
                 (* Leave leaf-only labels implicit (empty-clause default). *)
                 if Dme.equal dme [ Dme.empty_clause ] then None
                 else Some (l, dme))
        in
        Some (Schema.make ~root:first.label ~rules)

let infer docs = infer_with infer_dme docs

let infer_disjunction_free docs =
  let single multisets =
    let module S = SSet in
    let all_labels =
      List.fold_left
        (fun acc w -> S.union acc (support_of w))
        S.empty multisets
    in
    if S.is_empty all_labels then [ Dme.empty_clause ]
    else
      [
        S.elements all_labels
        |> List.map (fun l ->
               let counts =
                 List.map (fun w -> Dme.Labels.count l w) multisets
               in
               let lo = List.fold_left min max_int counts
               and hi = List.fold_left max 0 counts in
               (l, Multiplicity.of_counts ~lo ~hi))
        |> Dme.clause;
      ]
  in
  infer_with single docs
