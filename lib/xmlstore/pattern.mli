(** A compiled twig pattern, decoupled from {!Twig.Query} so the store
    library does not depend on the learner stack.  [Twig.Eval.to_pattern]
    lowers a query into this shape.

    Filter nodes are flattened into [fnodes] with dense ids; an edge
    [(axis, j)] under a node points at [fnodes.(j)].  Compilation
    guarantees a parent's id is smaller than all of its children's ids, so
    a right-to-left pass over [fnodes] is bottom-up. *)

type axis = Child | Descendant
type test = Wild | Name of string

type fnode = { ftest : test; fedges : (axis * int) list }
type step = { saxis : axis; stest : test; sedges : (axis * int) list }

type t = { fnodes : fnode array; steps : step array }

val node_count : t -> int
(** Spine steps plus filter nodes. *)

val pp : Format.formatter -> t -> unit
