(** Least general generalization (LGG) of twig queries — the learning engine
    of Section 2.

    The positive-example learner of Staworko & Wieczorek computes, for a set
    of annotated documents, the minimal anchored twig selecting every
    annotated node: "the identification of all common patterns of the
    examples".  Our construction follows the same plan:

    + each example is turned into its characteristic query
      ({!Query.of_example});
    + queries are merged pairwise: spines are aligned by a dynamic program
      that maximizes specificity (matching labels preferred over wildcards,
      child edges over descendant edges, kept nodes over dropped ones), with
      output aligned to output and roots to roots;
    + filters of aligned spine nodes are merged by the pairwise product of
      their filter sets, keeping only maximal (most specific) products;
    + the result is normalized into the anchored fragment ({!Query.anchor})
      and redundant filters are pruned by containment ({!minimize}).

    The merge [lgg q1 q2] always {e contains} both inputs (it selects every
    node either selects); on anchored inputs it is their least upper bound.
    [max_filters] caps each node's filter set to bound the product size. *)

val lgg :
  ?label_guided:bool -> ?rescue:bool -> ?max_filters:int ->
  Query.t -> Query.t -> Query.t
(** Pairwise merge.  [max_filters] defaults to 32.

    The two flags are ablation knobs (production defaults both [true],
    benchmarked by experiment E13): [label_guided:false] reverts the filter
    product to the naive all-pairs construction (conjunctions of
    per-example shapes accumulate and never generalize); [rescue:false]
    disables the descendant rescue of invariant tests buried at different
    depths (losing e.g. [//keyword] across [text] vs [parlist] branches). *)

val lgg_all :
  ?label_guided:bool -> ?rescue:bool -> ?max_filters:int ->
  Query.t list -> Query.t option
(** Fold of {!lgg} over a non-empty list ([None] on []). *)

val minimize : Query.t -> Query.t
(** Removes filters implied by a sibling filter (via
    {!Contain.filter_subsumed}) and deduplicates, at every node.  The result
    is equivalent to the input. *)

val merge_filters :
  max_filters:int ->
  (Query.axis * Query.filter) list ->
  (Query.axis * Query.filter) list ->
  (Query.axis * Query.filter) list
(** The filter-set product used at aligned spine nodes (exposed for tests):
    all pairwise filter LGGs, pruned to maximal elements. *)

val lgg_filter : Query.filter -> Query.filter -> Query.filter
(** LGG of two filter trees (root aligned to root). *)
