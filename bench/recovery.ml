(* The cost of crash safety (PR-2): raw journal append (fsync'd and not)
   and replay over a 1k-answer session, then live vs journaled vs resumed
   wall-clock for each interactive engine.  Results go to BENCH_PR2.json —
   machine-readable, for the CI artifact. *)

let time f =
  let t0 = Core.Monotonic.now () in
  let x = f () in
  (x, Core.Monotonic.now () -. t0)

let temp () = Filename.temp_file "learnq_bench" ".wal"

let with_temp f =
  let path = temp () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let recovered_exn = function
  | Ok (r : Core.Journal.recovered) -> r
  | Error e -> failwith (Core.Error.to_string e)

let decode_with decode events =
  List.filter_map
    (function
      | Core.Journal.Answered (s, reply) ->
          Option.map (fun it -> (it, reply)) (decode s)
      | _ -> None)
    events

(* ------------------------------------------------------------------ *)
(* Raw journal: a 1k-answer session, recorded and replayed              *)
(* ------------------------------------------------------------------ *)

let answers = 1_000

let session_events =
  List.concat
    (List.init answers (fun i ->
         let item = Printf.sprintf "item-%04d" i in
         Core.Journal.
           [ Asked item; Answered (item, Core.Flaky.Label (i mod 3 = 0)) ]))

let record ~sync path =
  let j =
    Core.Journal.create ~sync ~path
      { Core.Journal.seed = 1; engine = "bench"; config = "pr2" }
  in
  List.iter (Core.Journal.append j) session_events;
  Core.Journal.append j Core.Journal.Completed;
  Core.Journal.close j

type journal_times = {
  record_sync : float;
  record_nosync : float;
  replay : float;
}

let journal_times () =
  with_temp (fun p_sync ->
      with_temp (fun p_nosync ->
          let (), record_sync = time (fun () -> record ~sync:Core.Journal.Always p_sync) in
          let (), record_nosync =
            time (fun () -> record ~sync:Core.Journal.Off p_nosync)
          in
          let r, replay =
            time (fun () -> recovered_exn (Core.Journal.recover ~path:p_sync))
          in
          assert (List.length (Core.Journal.answered r) = answers);
          { record_sync; record_nosync; replay }))

(* ------------------------------------------------------------------ *)
(* Per-engine sessions: live, journaled (fsync'd), resumed from journal *)
(* ------------------------------------------------------------------ *)

type engine_times = {
  name : string;
  questions : int;
  live : float;
  journaled : float;
  resumed : float;
}

(* [run ?journal ?resume] must run one full session; the three timings use
   fresh deterministic rngs so the sessions are identical. *)
let measure_engine name encode decode run =
  with_temp (fun path ->
      let live_outcome, live = time (fun () -> run None []) in
      let j =
        Core.Journal.create ~path
          { Core.Journal.seed = 1; engine = name; config = "bench" }
      in
      let journaled_outcome, journaled =
        time (fun () -> run (Some (j, encode)) [])
      in
      Core.Journal.close j;
      let r = recovered_exn (Core.Journal.recover ~path) in
      let resume = decode_with decode r.events in
      let resumed_outcome, resumed = time (fun () -> run None resume) in
      ignore journaled_outcome;
      if resumed_outcome <> live_outcome then
        failwith (name ^ ": replayed session diverged from the live one");
      {
        name;
        questions = live_outcome;
        live;
        journaled;
        resumed;
      })

let twig_engine () =
  let doc = Benchkit.Xmark.generate ~scale:1.0 ~seed:1 () in
  let goal = Twig.Parse.query "//person[profile/education]/name" in
  let items = Twiglearn.Interactive.items_of_doc doc in
  let oracle it = Core.Flaky.Label (Twig.Eval.selects_example goal it) in
  measure_engine "learn-twig" Twiglearn.Interactive.encode_item
    (Twiglearn.Interactive.decode_item ~doc)
    (fun journal resume ->
      let o =
        Twiglearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1)
          ?journal ~resume ~oracle ~items ()
      in
      o.questions + o.replayed)

let join_engine () =
  let rng = Core.Prng.create 1 in
  let inst =
    Relational.Generator.pair_instance ~rng ~left_rows:30 ~right_rows:30 ()
  in
  let space =
    Joinlearn.Signature.space
      ~left_arity:(Relational.Relation.arity inst.left)
      ~right_arity:(Relational.Relation.arity inst.right)
  in
  let items = Joinlearn.Interactive.items_of space inst.left inst.right in
  let goal = Joinlearn.Signature.of_predicate space inst.planted in
  let oracle (it : Joinlearn.Interactive.item) =
    Core.Flaky.Label (Joinlearn.Signature.subset goal it.mask)
  in
  measure_engine "learn-join"
    (Joinlearn.Interactive.encode_item ~left:inst.left ~right:inst.right)
    (Joinlearn.Interactive.decode_item ~left:inst.left ~right:inst.right)
    (fun journal resume ->
      let o =
        Joinlearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1)
          ~strategy:Joinlearn.Interactive.lattice_strategy ?journal ~resume
          ~oracle ~items ()
      in
      o.questions + o.replayed)

let path_engine () =
  let rng = Core.Prng.create 1 in
  let graph = Graphdb.Generators.geo ~rng ~cities:14 () in
  let goal = Automata.Dfa.of_regex (Automata.Regex.parse "highway highway*") in
  let items = Pathlearn.Interactive.items_of_graph ~max_len:3 ~rng graph in
  let oracle (it : Pathlearn.Interactive.item) =
    Core.Flaky.Label (Automata.Dfa.accepts goal it.word)
  in
  measure_engine "learn-path" Pathlearn.Interactive.encode_item
    Pathlearn.Interactive.decode_item
    (fun journal resume ->
      let o =
        Pathlearn.Interactive.Loop.run_flaky ~rng:(Core.Prng.create 1)
          ?journal ~resume ~oracle ~items ()
      in
      o.questions + o.replayed)

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let output = "BENCH_PR2.json"

let engine_json e =
  let overhead = if e.live > 0. then (e.journaled -. e.live) /. e.live else 0. in
  Printf.sprintf
    {|    { "engine": %S, "questions": %d, "live_s": %.6f,
      "journaled_sync_s": %.6f, "journal_overhead": %.4f,
      "resume_replay_s": %.6f }|}
    e.name e.questions e.live e.journaled overhead e.resumed

let run () =
  let jt = journal_times () in
  let engines = [ twig_engine (); join_engine (); path_engine () ] in
  let ratio = if jt.record_sync > 0. then jt.replay /. jt.record_sync else 0. in
  let json =
    Printf.sprintf
      {|{
  "bench": "pr2_crash_recovery",
  "generated_by": "dune exec bench/main.exe -- pr2",
  "journal": {
    "answers": %d,
    "record_live_sync_s": %.6f,
    "record_live_nosync_s": %.6f,
    "replay_s": %.6f,
    "replay_over_live_recording": %.4f,
    "replay_overhead_under_10pct": %b
  },
  "engines": [
%s
  ]
}
|}
      answers jt.record_sync jt.record_nosync jt.replay ratio (ratio < 0.10)
      (String.concat ",\n" (List.map engine_json engines))
  in
  let oc = open_out output in
  output_string oc json;
  close_out oc;
  Printf.printf
    "pr2: 1k-answer journal — record %.1f ms fsync'd (%.1f ms buffered), \
     replay %.1f ms (%.1f%% of recording)\n"
    (jt.record_sync *. 1e3) (jt.record_nosync *. 1e3) (jt.replay *. 1e3)
    (ratio *. 100.);
  List.iter
    (fun e ->
      Printf.printf
        "pr2: %-10s %4d questions — live %.1f ms, journaled %.1f ms, resume \
         replay %.1f ms\n"
        e.name e.questions (e.live *. 1e3) (e.journaled *. 1e3)
        (e.resumed *. 1e3))
    engines;
  Printf.printf "pr2: wrote %s\n" output
