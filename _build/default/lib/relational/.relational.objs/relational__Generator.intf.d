lib/relational/generator.mli: Algebra Core Relation
