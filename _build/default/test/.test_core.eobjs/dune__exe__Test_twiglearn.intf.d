test/test_twiglearn.mli:
