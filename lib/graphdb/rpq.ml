module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let no_budget () = Core.Budget.unlimited ()

(* Shared worker so [eval] and [eval_within] agree: fills [answers] as it
   goes, ticking per (node, dfa state) expansion, so a budget trip leaves a
   meaningful partial answer set behind. *)
let eval_into ~budget ~answers dfa g =
  let n = Graph.node_count g in
  (* BFS over (node, dfa state) from each source. *)
  for src = 0 to n - 1 do
    let seen = Hashtbl.create 64 in
    let rec go frontier =
      match frontier with
      | [] -> ()
      | (node, state) :: rest ->
          if Hashtbl.mem seen (node, state) then go rest
          else begin
            Core.Budget.tick budget;
            Hashtbl.add seen (node, state) ();
            if dfa.Automata.Dfa.final.(state) then
              answers := Pair_set.add (src, node) !answers;
            let nexts =
              List.filter_map
                (fun (label, dst) ->
                  match Automata.Dfa.symbol_index dfa label with
                  | None -> None
                  | Some i ->
                      Some (dst, dfa.Automata.Dfa.next.(state).(i)))
                (Graph.successors g node)
            in
            go (nexts @ rest)
          end
    in
    go [ (src, dfa.Automata.Dfa.start) ]
  done

let eval ?budget dfa g =
  let budget = match budget with Some b -> b | None -> no_budget () in
  let answers = ref Pair_set.empty in
  eval_into ~budget ~answers dfa g;
  Pair_set.elements !answers

let eval_within budget dfa g =
  let answers = ref Pair_set.empty in
  Core.Budget.run budget
    ~partial:(fun () -> Some (Pair_set.elements !answers))
    (fun () ->
      eval_into ~budget ~answers dfa g;
      Pair_set.elements !answers)

let selects ?budget dfa g (u, v) =
  let budget = match budget with Some b -> b | None -> no_budget () in
  let seen = Hashtbl.create 64 in
  let rec go frontier =
    match frontier with
    | [] -> false
    | (node, state) :: rest ->
        if Hashtbl.mem seen (node, state) then go rest
        else begin
          Core.Budget.tick budget;
          Hashtbl.add seen (node, state) ();
          if node = v && dfa.Automata.Dfa.final.(state) then true
          else
            let nexts =
              List.filter_map
                (fun (label, dst) ->
                  match Automata.Dfa.symbol_index dfa label with
                  | None -> None
                  | Some i -> Some (dst, dfa.Automata.Dfa.next.(state).(i)))
                (Graph.successors g node)
            in
            go (rest @ nexts)
        end
  in
  go [ (u, dfa.Automata.Dfa.start) ]

let witness ?budget dfa g ~src ~dst =
  let budget = match budget with Some b -> b | None -> no_budget () in
  (* BFS: shortest accepted word first. *)
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] -> None
    | (node, state, rev_word) :: rest ->
        if Hashtbl.mem seen (node, state) then go rest
        else begin
          Core.Budget.tick budget;
          Hashtbl.add seen (node, state) ();
          if node = dst && dfa.Automata.Dfa.final.(state) then
            Some (List.rev rev_word)
          else
            let nexts =
              List.filter_map
                (fun (label, next_node) ->
                  match Automata.Dfa.symbol_index dfa label with
                  | None -> None
                  | Some i ->
                      Some
                        ( next_node,
                          dfa.Automata.Dfa.next.(state).(i),
                          label :: rev_word ))
                (Graph.successors g node)
            in
            go (rest @ nexts)
        end
  in
  go [ (src, dfa.Automata.Dfa.start, []) ]

let paths_from ?budget g ~src ~max_len =
  let budget = match budget with Some b -> b | None -> no_budget () in
  let rec extend acc frontier len =
    if len >= max_len then List.rev acc
    else
      let next =
        List.concat_map
          (fun (rev_nodes, rev_word) ->
            match rev_nodes with
            | [] -> []
            | last :: _ ->
                List.map
                  (fun (label, dst) ->
                    (* One tick per extended walk: the frontier grows
                       exponentially in [max_len]. *)
                    Core.Budget.tick budget;
                    (dst :: rev_nodes, label :: rev_word))
                  (Graph.successors g last))
          frontier
      in
      let acc =
        List.fold_left
          (fun acc (rn, rw) -> (List.rev rn, List.rev rw) :: acc)
          acc next
      in
      extend acc next (len + 1)
  in
  extend [] [ ([ src ], []) ] 0

let paths_between ?budget g ~src ~dst ~max_len =
  List.filter
    (fun (nodes, _) ->
      match List.rev nodes with last :: _ -> last = dst | [] -> false)
    (paths_from ?budget g ~src ~max_len)

let words_between ?budget g ~src ~dst ~max_len =
  paths_between ?budget g ~src ~dst ~max_len
  |> List.map snd
  |> List.sort_uniq compare
