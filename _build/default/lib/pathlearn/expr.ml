type atom = Sym of string | Star of string
type t = atom list

let to_regex expr =
  List.fold_right
    (fun atom acc ->
      let r =
        match atom with
        | Sym a -> Automata.Regex.Sym a
        | Star a -> Automata.Regex.Star (Automata.Regex.Sym a)
      in
      Automata.Regex.Cat (r, acc))
    expr Automata.Regex.Eps
  |> Automata.Regex.simplify

let to_dfa expr = Automata.Dfa.of_regex (to_regex expr)

let rec matches expr word =
  match (expr, word) with
  | [], [] -> true
  | [], _ :: _ -> false
  | Sym a :: rest, w :: ws -> String.equal a w && matches rest ws
  | Sym _ :: _, [] -> false
  | Star a :: rest, w :: ws ->
      matches rest word || (String.equal a w && matches expr ws)
  | Star _ :: rest, [] -> matches rest []

let size = List.length

let generalize_word word =
  let rec runs = function
    | [] -> []
    | a :: rest ->
        let rec take n = function
          | b :: tl when String.equal a b -> take (n + 1) tl
          | tl -> (n, tl)
        in
        let n, tl = take 1 rest in
        (a, n) :: runs tl
  in
  List.concat_map
    (fun (a, n) -> if n >= 2 then [ Sym a; Star a ] else [ Sym a ])
    (runs word)

let star_all word =
  let rec runs = function
    | [] -> []
    | a :: rest ->
        let rec take = function
          | b :: tl when String.equal a b -> take tl
          | tl -> tl
        in
        Star a :: runs (take rest)
  in
  runs word

let consistent expr pos neg =
  List.for_all (matches expr) pos
  && List.for_all (fun w -> not (matches expr w)) neg

let learn ~pos ~neg =
  match pos with
  | [] -> None
  | _ ->
      let literal w = List.map (fun a -> Sym a) w in
      let candidates =
        List.concat_map
          (fun w -> [ literal w; generalize_word w; star_all w ])
          pos
        |> List.sort_uniq compare
      in
      candidates
      |> List.filter (fun e -> consistent e pos neg)
      |> List.sort (fun e1 e2 -> compare (size e1) (size e2))
      |> function
      | [] -> None
      | e :: _ -> Some e

let of_dfa dfa =
  let dfa = Automata.Dfa.minimize dfa in
  let k = Array.length dfa.Automata.Dfa.alphabet in
  (* Identify the dead state: a non-final state trapping all its
     transitions. *)
  let is_dead s =
    (not dfa.Automata.Dfa.final.(s))
    && Array.for_all (fun d -> d = s) dfa.Automata.Dfa.next.(s)
  in
  let rec walk state acc seen =
    if List.mem state seen then None
    else
      let loops = ref [] and forwards = ref [] in
      for i = 0 to k - 1 do
        let d = dfa.Automata.Dfa.next.(state).(i) in
        if d = state then loops := dfa.Automata.Dfa.alphabet.(i) :: !loops
        else if not (is_dead d) then
          forwards := (dfa.Automata.Dfa.alphabet.(i), d) :: !forwards
      done;
      let acc =
        match !loops with
        | [] -> Some acc
        | [ a ] -> Some (Star a :: acc)
        | _ -> None
      in
      match acc with
      | None -> None
      | Some acc -> (
          match !forwards with
          | [] -> if dfa.Automata.Dfa.final.(state) then Some (List.rev acc) else None
          | [ (a, d) ] ->
              if dfa.Automata.Dfa.final.(state) then None
                (* an accepting mid-chain state is not a pure concatenation *)
              else walk d (Sym a :: acc) (state :: seen)
          | _ -> None)
  in
  walk dfa.Automata.Dfa.start [] []

let pp ppf expr =
  if expr = [] then Format.pp_print_string ppf "ε"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
      (fun ppf -> function
        | Sym a -> Format.pp_print_string ppf a
        | Star a -> Format.fprintf ppf "%s*" a)
      ppf expr

let to_string e = Format.asprintf "%a" pp e
let equal (a : t) (b : t) = a = b
