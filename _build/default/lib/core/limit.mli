(** Identification in the limit (Gold 1967), the classical learning framework
    the paper builds on: a learner identifies a target concept in the limit
    when, fed an ever-growing presentation of examples, its hypotheses
    converge to a concept equivalent to the target after finitely many
    examples and never change afterwards.

    This harness drives experiments E1 (twig queries learned "generally from
    two examples") and E9 (disjunctive multiplicity schemas identifiable in
    the limit from positive examples). *)

type 'q verdict = {
  converged_at : int option;
      (** Number of examples after which the hypothesis is equivalent to the
          target and remains so through the end of the stream; [None] when
          the learner has not converged within the stream. *)
  hypotheses : 'q option list;
      (** Hypothesis after each prefix of the stream (index [i] = after
          [i+1] examples). *)
}

val run :
  learn:('e list -> 'q option) ->
  equiv:('q -> 'q -> bool) ->
  target:'q ->
  stream:'e list ->
  'q verdict
(** Feeds growing prefixes of [stream] to [learn] and records the convergence
    point with respect to [equiv] against [target]. *)

val converged : 'q verdict -> bool
