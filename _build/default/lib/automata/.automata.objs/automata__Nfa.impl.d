lib/automata/nfa.ml: Int List Regex Set String
