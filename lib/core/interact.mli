(** The interactive learning kernel (paper, Section 3).

    The paper's protocol: the database instance is very large; the learning
    algorithm repeatedly chooses an item (a tuple, an XML node, a graph path)
    and asks the user to label it positive or negative.  After each answer the
    algorithm "infers the items which become uninformative w.r.t. the
    previously labeled items" and never asks about those.  The loop stops when
    every item is either labeled or uninformative, and the goal is to minimize
    the number of interactions.

    The kernel is functorized over a {!SESSION}: a concrete learner exposing a
    monotone state, a notion of determined (= uninformative) items, and a
    current candidate query. *)

module type SESSION = sig
  type query
  type item

  type state
  (** Learner state after some sequence of labels. *)

  val init : item list -> state
  (** Fresh state over the pool of labelable items. *)

  val record : state -> item -> bool -> state
  (** [record st item label] incorporates the user's answer. *)

  val determined : state -> item -> bool option
  (** [determined st item] is [Some l] when every query consistent with the
      labels recorded so far assigns label [l] to [item] — asking the user
      about it would be uninformative; [None] when both labels are still
      possible. *)

  val candidate : state -> query option
  (** A query consistent with all recorded labels, if one exists. *)

  val pp_item : Format.formatter -> item -> unit
  val pp_query : Format.formatter -> query -> unit
end

(** How the next question is chosen among the informative items. *)
type ('state, 'item) strategy = Prng.t -> 'state -> 'item list -> 'item

val first_strategy : ('state, 'item) strategy
(** Deterministic: asks the first informative item (pool order). *)

val random_strategy : ('state, 'item) strategy
(** Uniform among informative items — the natural baseline. *)

module Make (S : SESSION) : sig
  type outcome = {
    query : S.query option;  (** final candidate *)
    questions : int;  (** number of user interactions (= crowd HITs) *)
    asked : (S.item * bool) list;  (** transcript, in order *)
    pruned : int;  (** items never asked because they became determined *)
    refused : int;  (** questions the user refused or never answered *)
    degraded : bool;  (** the session stopped on budget exhaustion *)
    state : S.state;  (** final learner state *)
  }

  val run :
    ?rng:Prng.t ->
    ?strategy:(S.state, S.item) strategy ->
    ?max_questions:int ->
    ?budget:Budget.t ->
    oracle:(S.item -> bool) ->
    items:S.item list ->
    unit ->
    outcome
  (** Runs the interactive protocol: repeatedly selects an informative item
      with [strategy] (default {!first_strategy}), labels it with [oracle],
      and updates the state, until no informative item remains or
      [max_questions] is reached.  [pruned] counts pool items whose label was
      inferred rather than asked.  When [budget] runs out mid-session the
      loop returns the current candidate with [degraded = true] instead of
      raising. *)

  val run_flaky :
    ?rng:Prng.t ->
    ?strategy:(S.state, S.item) strategy ->
    ?max_questions:int ->
    ?budget:Budget.t ->
    oracle:(S.item -> Flaky.reply) ->
    items:S.item list ->
    unit ->
    outcome
  (** {!run} against an unreliable user ({!Flaky}): refused and timed-out
      questions are set aside (counted in [refused]) and the session
      continues on the remaining pool — noisy answers are recorded as given,
      which is the crowdsourcing reality the robust learners exist for. *)

  val cost :
    price_per_question:float -> outcome -> float
  (** Crowdsourcing cost of a session: the paper equates minimizing
      interactions with minimizing financial cost of HITs (Section 3). *)
end
