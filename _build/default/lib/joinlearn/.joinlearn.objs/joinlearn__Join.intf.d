lib/joinlearn/join.mli: Core Relational Signature
