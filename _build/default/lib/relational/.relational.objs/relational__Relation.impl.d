lib/relational/relation.ml: Array Format Hashtbl List Printf Set String Value
