(** Regular path queries: evaluation of a regular language over an
    edge-labeled graph.  A pair [(u, v)] is an answer when some directed
    path from [u] to [v] spells a word of the language.  Evaluation is the
    standard product construction: BFS over (graph node × DFA state).

    This is the query class the paper identifies as "the most typical graph
    database queries" and seeks to learn (Section 3). *)

val eval : Automata.Dfa.t -> Graph.t -> (int * int) list
(** All answer pairs, sorted.  If the language contains ε every [(u, u)] is
    an answer. *)

val selects : Automata.Dfa.t -> Graph.t -> int * int -> bool

val witness :
  Automata.Dfa.t -> Graph.t -> src:int -> dst:int -> string list option
(** A shortest accepted word labeling a path from [src] to [dst]. *)

val paths_from :
  Graph.t -> src:int -> max_len:int -> (int list * string list) list
(** All labeled walks from [src] of length 1..[max_len] (node sequence and
    word), breadth-first.  Beware exponential growth; intended for small
    neighborhoods and example harvesting. *)

val paths_between :
  Graph.t -> src:int -> dst:int -> max_len:int -> (int list * string list) list

val words_between :
  Graph.t -> src:int -> dst:int -> max_len:int -> string list list
(** Distinct words among {!paths_between}. *)
